#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

namespace cpe::sim {
namespace detail {
namespace {

[[nodiscard]] bool entry_less(const Entry& a, const Entry& b) noexcept {
  return a.t != b.t ? a.t < b.t : a.seq < b.seq;
}

}  // namespace

void CalendarQueue::init_if_needed() {
  if (!buckets_.empty()) return;
  buckets_.resize(kMinBuckets);
  mask_ = kMinBuckets - 1;
  vcur_ = 0;
  bucket_top_ = width_;
}

void CalendarQueue::push(Entry e) {
  init_if_needed();
  maybe_grow();
  place(e);
  ++count_;
}

void CalendarQueue::place(Entry e) {
  if (count_ == 0) {
    // Empty queue: re-anchor the window at this entry, wherever virtual time
    // has wandered, so it lands in the heap directly.  Without this, a long
    // idle gap would strand the anchor far behind and push every new entry
    // through overflow + rebuild.
    const double q = e.t * inv_width_;
    if (q < kMaxVirtualBucket) {
      vcur_ = static_cast<std::uint64_t>(q);
      bucket_top_ = static_cast<Time>(vcur_ + 1) * width_;
    }
  }
  if (e.t < bucket_top_) {
    // Due inside (or before) the active window: straight into the heap.
    // Safe because the engine never schedules into the past, so `e` cannot
    // undercut an already-popped timestamp.
    cur_heap_.push_back(e);
    std::push_heap(cur_heap_.begin(), cur_heap_.end(), EntryAfter{});
    return;
  }
  const double q = e.t * inv_width_;
  // The negated comparison routes NaN/inf timestamps to overflow too.
  if (!(q < kMaxVirtualBucket)) {
    push_overflow(e);
    return;
  }
  const std::uint64_t v = static_cast<std::uint64_t>(q);
  // More than one wheel revolution out: park in overflow rather than letting
  // a far-future entry alias into the live lap, where every drained window
  // would have to sweep past it.  position() adopts overflow entries as the
  // window reaches them, and re-spreads the lot once the nearer entries are
  // exhausted.
  if (v - vcur_ >= buckets_.size()) {
    push_overflow(e);
    return;
  }
  buckets_[static_cast<std::size_t>(v) & mask_].push_back(e);
}

const Entry* CalendarQueue::peek() {
  return position() ? cur_heap_.data() : nullptr;
}

Entry CalendarQueue::pop() {
  const bool have = position();
  CPE_ASSERT(have);
  std::pop_heap(cur_heap_.begin(), cur_heap_.end(), EntryAfter{});
  const Entry e = cur_heap_.back();
  cur_heap_.pop_back();
  --count_;
  if (count_ == 0) {
    // Reset the window to a canonical anchor so a temporarily stretched
    // bucket_top_ (overflow adoption) cannot outlive the entries behind it.
    vcur_ = 0;
    bucket_top_ = width_;
  } else {
    maybe_shrink();
  }
  return e;
}

void CalendarQueue::push_overflow(Entry e) {
  // overflow_ is a (t, seq) min-heap (EntryAfter, like cur_heap_) so
  // adopt_due_overflow can peel due entries off the front in order.
  overflow_.push_back(e);
  std::push_heap(overflow_.begin(), overflow_.end(), EntryAfter{});
}

void CalendarQueue::adopt_due_overflow() {
  // Every advance of bucket_top_ may move the window past parked overflow
  // entries; they must join the active-window heap before anything behind
  // the new bucket_top_ is popped, or pops go back in time.
  while (!overflow_.empty() && overflow_.front().t < bucket_top_) {
    std::pop_heap(overflow_.begin(), overflow_.end(), EntryAfter{});
    cur_heap_.push_back(overflow_.back());
    overflow_.pop_back();
    std::push_heap(cur_heap_.begin(), cur_heap_.end(), EntryAfter{});
  }
}

bool CalendarQueue::position() {
  if (count_ == 0) return false;
  if (!cur_heap_.empty()) return true;
  const std::size_t in_buckets = count_ - overflow_.size();
  if (in_buckets > 0) {
    // Sweep the wheel forward one window at a time.  Entries are placed at
    // most one revolution ahead, so the minimum is met within one lap.  (The
    // direct-search fallback below is defensive: it also terminates sweeps
    // that FP rounding at the lap boundary could otherwise prolong.)
    const std::size_t nb = buckets_.size();
    bool found = false;
    for (std::size_t lap = 0; lap < nb && !found; ++lap) {
      found = sweep_bucket();
      if (!found) {
        ++vcur_;
        bucket_top_ = static_cast<Time>(vcur_ + 1) * width_;
      }
    }
    if (!found) {
      const Entry* min = nullptr;
      for (const std::vector<Entry>& b : buckets_)
        for (const Entry& e : b)
          if (min == nullptr || entry_less(e, *min)) min = &e;
      CPE_ASSERT(min != nullptr);
      // Re-anchor the window at the minimum's own virtual bucket, sweep it.
      const double q = min->t * inv_width_;
      vcur_ = static_cast<std::uint64_t>(q);
      bucket_top_ = static_cast<Time>(vcur_ + 1) * width_;
      const bool swept = sweep_bucket();
      CPE_ASSERT(swept);
    }
    // The window advanced: anything parked in overflow that is now due
    // before bucket_top_ must contend in the heap, or it would be popped
    // after later-timestamped bucket entries.
    adopt_due_overflow();
    return true;
  }
  // Every pending entry sits in overflow.  If the earliest is finite,
  // rebuild: re-estimate the width over what remains and re-spread it across
  // the wheel, so the coming pops are O(1) again instead of one adoption
  // scan each.  The rebuild leaves the minimum in the heap or a bucket
  // within the new lap, so one recursion always suffices.
  std::size_t min_idx = 0;
  for (std::size_t i = 1; i < overflow_.size(); ++i)
    if (entry_less(overflow_[i], overflow_[min_idx])) min_idx = i;
  CPE_ASSERT(!overflow_.empty());
  if (overflow_[min_idx].t * inv_width_ < kMaxVirtualBucket) {
    rebuild(buckets_.size());
    return position();
  }
  // Non-finite (or astronomically far) minimum: adopt just it into the heap
  // and stretch the window up to it so earlier-timestamped future pushes
  // still join the heap ahead of it.
  cur_heap_.push_back(overflow_[min_idx]);
  overflow_[min_idx] = overflow_.back();
  overflow_.pop_back();
  std::make_heap(overflow_.begin(), overflow_.end(), EntryAfter{});
  bucket_top_ = cur_heap_.front().t;
  return true;
}

bool CalendarQueue::sweep_bucket() {
  std::vector<Entry>& b = buckets_[static_cast<std::size_t>(vcur_) & mask_];
  if (b.empty()) return false;
  std::size_t w = 0;
  for (std::size_t r = 0; r < b.size(); ++r) {
    if (b[r].t < bucket_top_) {
      cur_heap_.push_back(b[r]);
    } else {
      b[w++] = b[r];
    }
  }
  b.resize(w);
  if (cur_heap_.empty()) return false;
  std::make_heap(cur_heap_.begin(), cur_heap_.end(), EntryAfter{});
  return true;
}

void CalendarQueue::maybe_grow() {
  if (count_ + 1 > buckets_.size() * 2) rebuild(buckets_.size() * 2);
}

void CalendarQueue::maybe_shrink() {
  if (buckets_.size() > kMinBuckets && count_ < buckets_.size() / 8)
    rebuild(buckets_.size() / 2);
}

Time CalendarQueue::estimate_width(const std::vector<Entry>& all) const {
  if (all.size() < 2) return width_;
  // Estimate the pending span from a strided sample of timestamps (cheap,
  // and min/max are robust to stride), then size the bucket width to a few
  // *true* mean inter-event gaps — span over the full population, not the
  // sample — so one window holds O(1) due entries.
  const std::size_t kSample = 64;
  const std::size_t stride = all.size() > kSample ? all.size() / kSample : 1;
  Time lo = all[0].t, hi = all[0].t;
  for (std::size_t i = 0; i < all.size(); i += stride) {
    const Time t = all[i].t;
    if (t < lo) lo = t;
    if (t > hi) hi = t;
  }
  const Time span = hi - lo;
  if (!(span > 0)) return width_;
  Time w = 3.0 * span / static_cast<Time>(all.size() - 1);
  if (w < 1e-9) w = 1e-9;
  if (w > 1e15) w = 1e15;
  return w;
}

void CalendarQueue::rebuild(std::size_t nbuckets) {
  std::vector<Entry> all;
  all.reserve(count_);
  for (std::vector<Entry>& b : buckets_) {
    all.insert(all.end(), b.begin(), b.end());
    b.clear();
  }
  all.insert(all.end(), cur_heap_.begin(), cur_heap_.end());
  cur_heap_.clear();
  all.insert(all.end(), overflow_.begin(), overflow_.end());
  overflow_.clear();

  buckets_.resize(nbuckets);
  buckets_.shrink_to_fit();
  mask_ = nbuckets - 1;
  width_ = estimate_width(all);
  inv_width_ = 1.0 / width_;

  // Re-anchor at the earliest pending timestamp (all entries are >= engine
  // "now", so no push can ever undercut the new window).
  Time tmin = 0;
  bool have = false;
  for (const Entry& e : all) {
    if (!have || e.t < tmin) {
      tmin = e.t;
      have = true;
    }
  }
  double q0 = have ? tmin * inv_width_ : 0.0;
  if (!(q0 < kMaxVirtualBucket)) q0 = 0.0;
  vcur_ = static_cast<std::uint64_t>(q0);
  bucket_top_ = static_cast<Time>(vcur_ + 1) * width_;

  for (const Entry& e : all) place(e);  // count_ unchanged
}

}  // namespace detail

std::uint32_t Engine::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  // Lock-step capacity: cancel() returns freed slots to this list from a
  // noexcept context, so it must never need to grow there.
  free_slots_.reserve(slots_.capacity());
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

EventId Engine::commit_slot(std::uint32_t slot, Time t) {
  const std::uint32_t gen = slots_[slot].gen;
  queue_.push(detail::Entry{t, next_seq_++, slot, gen});
  ++live_;
  return EventId{slot, gen};
}

void Engine::cancel(EventId id) noexcept {
  if (!id.valid() || id.slot >= slots_.size()) return;
  Slot& s = slots_[id.slot];
  if (s.gen != id.gen || !s.fn) return;
  // Invalidate: the queue entry becomes stale and is skipped on pop or
  // removed by the next compaction.
  ++s.gen;
  s.fn.reset();
  free_slots_.push_back(id.slot);
  --live_;
  ++dead_;
  if (dead_ > live_ && dead_ > kCompactFloor) compact_queue();
}

void Engine::compact_queue() noexcept {
  queue_.retain([this](const detail::Entry& e) noexcept {
    const Slot& s = slots_[e.slot];
    return s.gen == e.gen && static_cast<bool>(s.fn);
  });
  dead_ = 0;
}

bool Engine::pending(EventId id) const noexcept {
  return id.valid() && id.slot < slots_.size() &&
         slots_[id.slot].gen == id.gen &&
         static_cast<bool>(slots_[id.slot].fn);
}

bool Engine::step() {
  rethrow_pending_failure();
  while (!queue_.empty()) {
    detail::Entry e = queue_.pop();
    Slot& s = slots_[e.slot];
    if (s.gen != e.gen || !s.fn) {  // cancelled: skip stale entry
      CPE_ASSERT(dead_ > 0);
      --dead_;
      continue;
    }
    CPE_ASSERT(e.t >= now_);
    now_ = e.t;
#if defined(__GNUC__)
    // The next event's slot was written far (in event count) before it
    // fires, so it is almost always cache-cold; start the load now and let
    // it overlap with this event's callback.
    if (const detail::Entry* h = queue_.next_hint())
      __builtin_prefetch(&slots_[h->slot]);
#endif
    // Detach the callback before running it so the callback may freely
    // schedule/cancel (including re-using this slot).
    detail::EventFn fn = std::move(s.fn);
    ++s.gen;
    free_slots_.push_back(e.slot);
    --live_;
    fn();
    rethrow_pending_failure();
    return true;
  }
  return false;
}

std::size_t Engine::run(std::size_t max_events) {
  std::size_t n = 0;
  while (step()) {
    if (++n >= max_events)
      throw Error("Engine::run: event budget exhausted (livelock?)");
  }
  return n;
}

std::size_t Engine::run_until(Time t, std::size_t max_events) {
  CPE_EXPECTS(t >= now_);
  std::size_t n = 0;
  rethrow_pending_failure();
  for (;;) {
    const detail::Entry* top = queue_.peek();
    if (top == nullptr) break;
    const Slot& s = slots_[top->slot];
    if (s.gen != top->gen || !s.fn) {
      queue_.pop();
      CPE_ASSERT(dead_ > 0);
      --dead_;
      continue;
    }
    if (top->t > t) break;
    step();
    if (++n >= max_events)
      throw Error("Engine::run_until: event budget exhausted (livelock?)");
  }
  now_ = t;
  return n;
}

void Engine::rethrow_pending_failure() {
  if (failures_.empty()) return;
  std::exception_ptr e = failures_.front();
  failures_.pop_front();
  std::rethrow_exception(e);
}

}  // namespace cpe::sim
