#include "sim/engine.hpp"

#include <utility>

namespace cpe::sim {

EventId Engine::schedule_at(Time t, std::function<void()> fn) {
  CPE_EXPECTS(fn != nullptr);
  if (t < now_) t = now_;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].fn = std::move(fn);
  const std::uint32_t gen = slots_[slot].gen;
  queue_.push(QueueEntry{t, next_seq_++, slot, gen});
  ++live_;
  return EventId{slot, gen};
}

void Engine::cancel(EventId id) noexcept {
  if (!id.valid() || id.slot >= slots_.size()) return;
  Slot& s = slots_[id.slot];
  if (s.gen != id.gen || !s.fn) return;
  // Invalidate: the queue entry becomes stale and is skipped on pop.
  ++s.gen;
  s.fn = nullptr;
  free_slots_.push_back(id.slot);
  --live_;
}

bool Engine::pending(EventId id) const noexcept {
  return id.valid() && id.slot < slots_.size() &&
         slots_[id.slot].gen == id.gen && slots_[id.slot].fn != nullptr;
}

bool Engine::step() {
  rethrow_pending_failure();
  while (!queue_.empty()) {
    QueueEntry e = queue_.top();
    queue_.pop();
    Slot& s = slots_[e.slot];
    if (s.gen != e.gen || !s.fn) continue;  // cancelled: skip stale entry
    CPE_ASSERT(e.t >= now_);
    now_ = e.t;
    // Detach the callback before running it so the callback may freely
    // schedule/cancel (including re-using this slot).
    std::function<void()> fn = std::move(s.fn);
    s.fn = nullptr;
    ++s.gen;
    free_slots_.push_back(e.slot);
    --live_;
    fn();
    rethrow_pending_failure();
    return true;
  }
  return false;
}

std::size_t Engine::run(std::size_t max_events) {
  std::size_t n = 0;
  while (step()) {
    if (++n >= max_events)
      throw Error("Engine::run: event budget exhausted (livelock?)");
  }
  return n;
}

std::size_t Engine::run_until(Time t, std::size_t max_events) {
  CPE_EXPECTS(t >= now_);
  std::size_t n = 0;
  rethrow_pending_failure();
  while (!queue_.empty()) {
    const QueueEntry& top = queue_.top();
    if (slots_[top.slot].gen != top.gen || !slots_[top.slot].fn) {
      queue_.pop();
      continue;
    }
    if (top.t > t) break;
    step();
    if (++n >= max_events)
      throw Error("Engine::run_until: event budget exhausted (livelock?)");
  }
  now_ = t;
  return n;
}

void Engine::rethrow_pending_failure() {
  if (failures_.empty()) return;
  std::exception_ptr e = failures_.front();
  failures_.erase(failures_.begin());
  std::rethrow_exception(e);
}

}  // namespace cpe::sim
