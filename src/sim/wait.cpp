#include "sim/wait.hpp"

namespace cpe::sim {

void WaitQueue::Node::cleanup() noexcept {
  if (queue_ != nullptr) {
    queue_->unlink(*this);
  } else if (eng_ != nullptr && eng_->pending(wake_ev_)) {
    // Woken but not yet resumed: cancel the wake-up so the engine never
    // resumes a destroyed frame.
    eng_->cancel(wake_ev_);
  }
  eng_ = nullptr;
}

void WaitQueue::enqueue(Engine& eng, Node& n, std::coroutine_handle<> h) {
  CPE_EXPECTS(!n.linked());
  n.queue_ = this;
  n.handle_ = h;
  n.eng_ = &eng;
  n.granted_ = false;
  n.prev_ = tail_;
  n.next_ = nullptr;
  if (tail_ != nullptr)
    tail_->next_ = &n;
  else
    head_ = &n;
  tail_ = &n;
  ++size_;
}

void WaitQueue::unlink(Node& n) noexcept {
  if (n.prev_ != nullptr)
    n.prev_->next_ = n.next_;
  else
    head_ = n.next_;
  if (n.next_ != nullptr)
    n.next_->prev_ = n.prev_;
  else
    tail_ = n.prev_;
  n.prev_ = n.next_ = nullptr;
  n.queue_ = nullptr;
  --size_;
}

bool WaitQueue::wake_one(bool grant) {
  if (head_ == nullptr) return false;
  Node& n = *head_;
  Engine& eng = *n.eng_;
  unlink(n);
  n.granted_ = grant;
  // Resume via an engine event (not inline) to keep stack depth bounded and
  // event ordering deterministic.
  n.wake_ev_ = eng.schedule_at(eng.now(), [h = n.handle_] { h.resume(); });
  return true;
}

std::size_t WaitQueue::wake_all() {
  std::size_t count = 0;
  while (wake_one()) ++count;
  return count;
}

}  // namespace cpe::sim
