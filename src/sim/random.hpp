// Deterministic pseudo-random number generation for simulations.
//
// xoshiro256** (Blackman & Vigna): fast, high-quality, and — unlike
// std::mt19937 with std::*_distribution — bit-reproducible across standard
// library implementations, which the deterministic-replay invariant
// (DESIGN.md §6.8) requires.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

#include "sim/assert.hpp"

namespace cpe::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    CPE_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    CPE_EXPECTS(n > 0);
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    CPE_EXPECTS(mean > 0);
    double u = uniform();
    while (u == 0.0) u = uniform();
    return -mean * std::log(u);
  }

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = uniform();
    while (u1 == 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
  }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent, reproducible sub-stream (for per-host/per-task
  /// generators that must not perturb each other's sequences).
  Rng split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ull); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace cpe::sim
