// Contract-checking macros used throughout the CPE library.
//
// Follows the C++ Core Guidelines (I.6/I.8): preconditions and postconditions
// are stated explicitly at API boundaries.  Violations throw ContractError so
// that tests can assert on them and simulations fail loudly instead of
// corrupting state.
#pragma once

#include <stdexcept>
#include <string>

namespace cpe {

/// Base class for all errors raised by the CPE library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised when a CPE_EXPECTS / CPE_ENSURES / CPE_ASSERT contract is violated.
class ContractError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  throw ContractError(std::string(kind) + " violation: (" + expr + ") at " +
                      file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace cpe

#define CPE_EXPECTS(expr)                                                 \
  do {                                                                    \
    if (!(expr))                                                          \
      ::cpe::detail::contract_failure("precondition", #expr, __FILE__,    \
                                      __LINE__);                          \
  } while (false)

#define CPE_ENSURES(expr)                                                 \
  do {                                                                    \
    if (!(expr))                                                          \
      ::cpe::detail::contract_failure("postcondition", #expr, __FILE__,   \
                                      __LINE__);                          \
  } while (false)

#define CPE_ASSERT(expr)                                                  \
  do {                                                                    \
    if (!(expr))                                                          \
      ::cpe::detail::contract_failure("invariant", #expr, __FILE__,       \
                                      __LINE__);                          \
  } while (false)
