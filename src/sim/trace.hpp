// Structured trace log for simulations.
//
// Every subsystem reports significant events (message sends, migration
// stages, FSM transitions, scheduler decisions) to a TraceLog.  Benches use
// it to print stage timelines (Figures 1/3/4); tests use it to assert event
// orderings and deterministic replay.
//
// The log is a capped ring buffer: long benches generate millions of
// records, and an unbounded vector would dominate memory.  When the cap is
// reached the oldest records are discarded and `dropped()` counts them, so
// an exporter can report the truncation instead of silently losing history.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace cpe::sim {

class Engine;

struct TraceRecord {
  Time t = 0;
  std::string category;  ///< e.g. "mpvm.migrate", "adm.fsm", "gs"
  std::string text;

  [[nodiscard]] bool operator==(const TraceRecord&) const = default;
};

class TraceLog {
 public:
  /// Default ring capacity: generous for every test and example, small
  /// enough that a runaway bench cannot exhaust memory.
  static constexpr std::size_t kDefaultCapacity = 65536;
  /// Floor for set_capacity(): a ring that cannot hold at least one old and
  /// one new record makes find()/count() useless and turns every log() into
  /// a drop.  Requests below the floor (including 0) are clamped, not
  /// asserted — capacity is a tuning knob, not a correctness input.
  static constexpr std::size_t kMinCapacity = 16;

  explicit TraceLog(const Engine& eng) : eng_(&eng) {}

  /// Append a record stamped with the current virtual time.  When the ring
  /// is full the oldest record is dropped and counted.
  void log(std::string_view category, std::string text);

  [[nodiscard]] const std::deque<TraceRecord>& records() const noexcept {
    return records_;
  }
  void clear() noexcept {
    records_.clear();
    dropped_ = 0;
  }

  /// Ring capacity control.  Shrinking below the current size drops the
  /// oldest records immediately (and counts them).  Requests below
  /// kMinCapacity are clamped to it.
  void set_capacity(std::size_t cap);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Records discarded because the ring was full since the last clear().
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// All records whose category matches exactly.
  [[nodiscard]] std::vector<TraceRecord> by_category(
      std::string_view category) const;

  /// First record (by time) whose category matches and whose text contains
  /// `needle`; returns nullptr when absent.
  [[nodiscard]] const TraceRecord* find(std::string_view category,
                                        std::string_view needle) const;

  /// Count of records in a category.
  [[nodiscard]] std::size_t count(std::string_view category) const;

  /// Echo records to a stream as they are logged (benches, debugging).
  void echo_to(std::ostream* os) noexcept { echo_ = os; }

  /// Optional filter applied to echoed records only (the log always records).
  void echo_filter(std::function<bool(const TraceRecord&)> f) {
    echo_filter_ = std::move(f);
  }

  /// Render the full log (or one category) as "t=... [cat] text" lines.
  [[nodiscard]] std::string format(std::string_view category = {}) const;

 private:
  const Engine* eng_;
  std::deque<TraceRecord> records_;
  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t dropped_ = 0;
  std::ostream* echo_ = nullptr;
  std::function<bool(const TraceRecord&)> echo_filter_;
};

}  // namespace cpe::sim
