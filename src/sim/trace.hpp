// Structured trace log for simulations.
//
// Every subsystem reports significant events (message sends, migration
// stages, FSM transitions, scheduler decisions) to a TraceLog.  Benches use
// it to print stage timelines (Figures 1/3/4); tests use it to assert event
// orderings and deterministic replay.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace cpe::sim {

class Engine;

struct TraceRecord {
  Time t = 0;
  std::string category;  ///< e.g. "mpvm.migrate", "adm.fsm", "gs"
  std::string text;

  [[nodiscard]] bool operator==(const TraceRecord&) const = default;
};

class TraceLog {
 public:
  explicit TraceLog(const Engine& eng) : eng_(&eng) {}

  /// Append a record stamped with the current virtual time.
  void log(std::string_view category, std::string text);

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  void clear() noexcept { records_.clear(); }

  /// All records whose category matches exactly.
  [[nodiscard]] std::vector<TraceRecord> by_category(
      std::string_view category) const;

  /// First record (by time) whose category matches and whose text contains
  /// `needle`; returns nullptr when absent.
  [[nodiscard]] const TraceRecord* find(std::string_view category,
                                        std::string_view needle) const;

  /// Count of records in a category.
  [[nodiscard]] std::size_t count(std::string_view category) const;

  /// Echo records to a stream as they are logged (benches, debugging).
  void echo_to(std::ostream* os) noexcept { echo_ = os; }

  /// Optional filter applied to echoed records only (the log always records).
  void echo_filter(std::function<bool(const TraceRecord&)> f) {
    echo_filter_ = std::move(f);
  }

  /// Render the full log (or one category) as "t=... [cat] text" lines.
  [[nodiscard]] std::string format(std::string_view category = {}) const;

 private:
  const Engine* eng_;
  std::vector<TraceRecord> records_;
  std::ostream* echo_ = nullptr;
  std::function<bool(const TraceRecord&)> echo_filter_;
};

}  // namespace cpe::sim
