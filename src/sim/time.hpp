// Simulated-time definitions for the discrete-event engine.
#pragma once

#include <limits>

namespace cpe::sim {

/// Simulated time, in seconds.  Double precision gives sub-nanosecond
/// resolution over the minute-scale horizons used by the experiments.
using Time = double;

/// A time later than any event the simulator will ever schedule.
inline constexpr Time kForever = std::numeric_limits<Time>::infinity();

/// Convenience literals for readable cost models.
constexpr Time micros(double us) { return us * 1e-6; }
constexpr Time millis(double ms) { return ms * 1e-3; }
constexpr Time seconds(double s) { return s; }

}  // namespace cpe::sim
