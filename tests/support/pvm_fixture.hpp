// Shared test fixture: a small worknet with a PVM virtual machine on it.
#pragma once

#include <gtest/gtest.h>

#include "pvm/system.hpp"

namespace cpe::test {

/// Two HPPA workstations (the paper's testbed) plus one slower SPARC box for
/// heterogeneity tests, all on one 10 Mb/s Ethernet.
struct WorknetFixture : ::testing::Test {
  sim::Engine eng;
  net::Network net{eng};
  os::Host host1{eng, net, os::HostConfig("host1", "HPPA", 1.0)};
  os::Host host2{eng, net, os::HostConfig("host2", "HPPA", 1.0)};
  os::Host sparc{eng, net, os::HostConfig("sparc1", "SPARC", 0.8)};
  pvm::PvmSystem vm{eng, net};

  WorknetFixture() {
    vm.add_host(host1);
    vm.add_host(host2);
    vm.add_host(sparc);
  }

  /// Run the simulation to completion and assert all tasks exited.
  void run_all() {
    eng.run();
    EXPECT_EQ(vm.live_task_count(), 0u)
        << "tasks still alive when the event queue drained (deadlock?)";
  }
};

}  // namespace cpe::test
