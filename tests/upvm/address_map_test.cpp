#include "upvm/address_map.hpp"

#include <gtest/gtest.h>

namespace cpe::upvm {
namespace {

TEST(AddressSpaceMap, AllocatesDisjointRegions) {
  AddressSpaceMap map(256 << 20, 16 << 20);
  for (int i = 0; i < 10; ++i) (void)map.allocate();
  EXPECT_EQ(map.allocated(), 10u);
  EXPECT_TRUE(map.disjoint());
}

TEST(AddressSpaceMap, RegionsAreContiguousAndSized) {
  AddressSpaceMap map(64 << 20, 8 << 20, 0x1000);
  VaRegion a = map.allocate();
  VaRegion b = map.allocate();
  EXPECT_EQ(a.base, 0x1000u);
  EXPECT_EQ(a.size, 8u << 20);
  EXPECT_EQ(b.base, a.end());
}

TEST(AddressSpaceMap, MaxUlpsFromBudget) {
  AddressSpaceMap map(64 << 20, 16 << 20);
  EXPECT_EQ(map.max_ulps(), 4u);
}

TEST(AddressSpaceMap, ExhaustionThrowsThePaperLimit) {
  // §3.2.2: the VA-division scheme caps the number of ULPs.
  AddressSpaceMap map(32 << 20, 16 << 20);
  (void)map.allocate();
  (void)map.allocate();
  EXPECT_THROW((void)map.allocate(), Error);
}

TEST(AddressSpaceMap, RegionOfIsStable) {
  AddressSpaceMap map(256 << 20, 16 << 20);
  VaRegion r0 = map.allocate();
  (void)map.allocate();
  EXPECT_EQ(map.region_of(0).base, r0.base);
  EXPECT_THROW((void)map.region_of(5), ContractError);
}

TEST(AddressSpaceMap, ReleaseReturnsRegionForReuse) {
  // The VA-leak fix: a released region goes back on the free list and the
  // next allocate() hands it out again instead of carving a fresh slot.
  AddressSpaceMap map(32 << 20, 16 << 20);  // budget: exactly 2 slots
  VaRegion a = map.allocate();
  VaRegion b = map.allocate();
  EXPECT_EQ(map.allocated(), 2u);
  map.release(a);
  EXPECT_EQ(map.allocated(), 1u);
  VaRegion c = map.allocate();
  EXPECT_EQ(c.base, a.base);
  EXPECT_EQ(c.size, a.size);
  EXPECT_TRUE(map.disjoint());
  (void)b;
}

TEST(AddressSpaceMap, CreateExitChurnNeverExhaustsTheBudget) {
  // Before the fix, every ULP exit leaked its region: the §3.2.2 budget was
  // a lifetime cap, not a live cap, and this loop threw on iteration 3.
  AddressSpaceMap map(32 << 20, 16 << 20);  // max 2 live ULPs
  for (int i = 0; i < 100; ++i) {
    VaRegion r = map.allocate();
    map.release(r);
  }
  EXPECT_EQ(map.allocated(), 0u);
  // The budget still binds on *live* regions.
  (void)map.allocate();
  (void)map.allocate();
  EXPECT_THROW((void)map.allocate(), Error);
}

TEST(AddressSpaceMap, ReleaseOfUnknownRegionThrows) {
  AddressSpaceMap map(64 << 20, 16 << 20);
  VaRegion r = map.allocate();
  map.release(r);
  EXPECT_THROW(map.release(r), Error);  // double release
  EXPECT_THROW(map.release(VaRegion{0xdead0000, 0x1000}), Error);
}

TEST(AddressSpaceMap, OverlapDetector) {
  VaRegion a{0x1000, 0x100};
  VaRegion b{0x1100, 0x100};
  VaRegion c{0x10ff, 0x10};
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(b));
}

TEST(AddressSpaceMap, FormatMentionsEveryUlp) {
  AddressSpaceMap map(256 << 20, 16 << 20);
  (void)map.allocate();
  const std::string s = map.format();
  EXPECT_FALSE(s.empty());
}

}  // namespace
}  // namespace cpe::upvm
