#include "upvm/address_map.hpp"

#include <gtest/gtest.h>

namespace cpe::upvm {
namespace {

TEST(AddressSpaceMap, AllocatesDisjointRegions) {
  AddressSpaceMap map(256 << 20, 16 << 20);
  for (int i = 0; i < 10; ++i) (void)map.allocate();
  EXPECT_EQ(map.allocated(), 10u);
  EXPECT_TRUE(map.disjoint());
}

TEST(AddressSpaceMap, RegionsAreContiguousAndSized) {
  AddressSpaceMap map(64 << 20, 8 << 20, 0x1000);
  VaRegion a = map.allocate();
  VaRegion b = map.allocate();
  EXPECT_EQ(a.base, 0x1000u);
  EXPECT_EQ(a.size, 8u << 20);
  EXPECT_EQ(b.base, a.end());
}

TEST(AddressSpaceMap, MaxUlpsFromBudget) {
  AddressSpaceMap map(64 << 20, 16 << 20);
  EXPECT_EQ(map.max_ulps(), 4u);
}

TEST(AddressSpaceMap, ExhaustionThrowsThePaperLimit) {
  // §3.2.2: the VA-division scheme caps the number of ULPs.
  AddressSpaceMap map(32 << 20, 16 << 20);
  (void)map.allocate();
  (void)map.allocate();
  EXPECT_THROW((void)map.allocate(), Error);
}

TEST(AddressSpaceMap, RegionOfIsStable) {
  AddressSpaceMap map(256 << 20, 16 << 20);
  VaRegion r0 = map.allocate();
  (void)map.allocate();
  EXPECT_EQ(map.region_of(0).base, r0.base);
  EXPECT_THROW((void)map.region_of(5), ContractError);
}

TEST(AddressSpaceMap, OverlapDetector) {
  VaRegion a{0x1000, 0x100};
  VaRegion b{0x1100, 0x100};
  VaRegion c{0x10ff, 0x10};
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(b));
}

TEST(AddressSpaceMap, FormatMentionsEveryUlp) {
  AddressSpaceMap map(256 << 20, 16 << 20);
  (void)map.allocate();
  const std::string s = map.format();
  EXPECT_FALSE(s.empty());
}

}  // namespace
}  // namespace cpe::upvm
