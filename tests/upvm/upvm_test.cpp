#include "upvm/upvm.hpp"

#include <gtest/gtest.h>

#include "support/pvm_fixture.hpp"

namespace cpe::upvm {
namespace {

/// Two-HPPA-host worknet with UPVM containers started.
struct UpvmTest : ::testing::Test {
  sim::Engine eng;
  net::Network net{eng};
  os::Host host1{eng, net, os::HostConfig("host1", "HPPA", 1.0)};
  os::Host host2{eng, net, os::HostConfig("host2", "HPPA", 1.0)};
  pvm::PvmSystem vm{eng, net};
  Upvm upvm{vm};

  UpvmTest() {
    vm.add_host(host1);
    vm.add_host(host2);
  }

  /// Start containers synchronously (before the app).
  void start_upvm() {
    sim::spawn(eng, upvm.start());
    eng.run();
  }
};

TEST_F(UpvmTest, StartCreatesOneContainerPerHost) {
  start_upvm();
  EXPECT_EQ(upvm.containers().size(), 2u);
  EXPECT_EQ(vm.live_task_count(), 2u);
  EXPECT_EQ(&upvm.containers()[0]->host(), &host1);
  EXPECT_EQ(&upvm.containers()[1]->host(), &host2);
}

TEST_F(UpvmTest, SpmdPlacesUlpsRoundRobin) {
  start_upvm();
  auto ulps = upvm.run_spmd(
      [](Ulp&) -> sim::Co<void> { co_return; }, 5);
  EXPECT_EQ(ulps.size(), 5u);
  EXPECT_EQ(&ulps[0]->host(), &host1);
  EXPECT_EQ(&ulps[1]->host(), &host2);
  EXPECT_EQ(&ulps[2]->host(), &host1);
  EXPECT_EQ(upvm.containers()[0]->resident_ulps(), 3u);
  EXPECT_EQ(upvm.containers()[1]->resident_ulps(), 2u);
  eng.run();
}

TEST_F(UpvmTest, UlpRegionsAreUniqueAndDisjoint) {
  start_upvm();
  auto ulps = upvm.run_spmd([](Ulp&) -> sim::Co<void> { co_return; }, 8);
  EXPECT_TRUE(upvm.address_map().disjoint());
  for (std::size_t i = 0; i + 1 < ulps.size(); ++i)
    for (std::size_t j = i + 1; j < ulps.size(); ++j)
      EXPECT_FALSE(ulps[i]->region().overlaps(ulps[j]->region()));
  eng.run();
}

TEST_F(UpvmTest, UlpCountLimitedByAddressSpace) {
  UpvmOptions opts;
  opts.va_budget = 64ull << 20;
  opts.region_size = 16ull << 20;  // max 4 ULPs
  Upvm small(vm, opts);
  sim::spawn(eng, small.start());
  eng.run();
  EXPECT_THROW(
      small.run_spmd([](Ulp&) -> sim::Co<void> { co_return; }, 5), Error);
}

TEST_F(UpvmTest, ImageMustFitRegion) {
  start_upvm();
  auto ulps = upvm.run_spmd([](Ulp&) -> sim::Co<void> { co_return; }, 1);
  EXPECT_THROW(ulps[0]->set_data_bytes(17ull << 20), ContractError);
  eng.run();
}

TEST_F(UpvmTest, LocalMessagePassingBetweenCoResidentUlps) {
  start_upvm();
  std::string got;
  auto main = [&](Ulp& u) -> sim::Co<void> {
    if (u.inst() == 0) {
      u.initsend().pk_str("hello ulp2");
      co_await u.send(2, 1);  // ULP2 is co-resident on host1
    } else if (u.inst() == 2) {
      co_await u.recv(0, 1);
      got = u.rbuf().upk_str();
    }
  };
  upvm.run_spmd(main, 3);
  eng.run();
  EXPECT_EQ(got, "hello ulp2");
}

TEST_F(UpvmTest, RemoteMessagePassingAcrossContainers) {
  start_upvm();
  double got = 0;
  auto main = [&](Ulp& u) -> sim::Co<void> {
    if (u.inst() == 0) {
      u.initsend().pk_double(2.5);
      co_await u.send(1, 7);  // ULP1 lives on host2
    } else if (u.inst() == 1) {
      co_await u.recv(0, 7);
      got = u.rbuf().upk_double();
    }
  };
  upvm.run_spmd(main, 2);
  eng.run();
  EXPECT_EQ(got, 2.5);
}

TEST_F(UpvmTest, LocalHandoffFasterThanRemote) {
  start_upvm();
  double local_done = -1, remote_done = -1;
  auto main = [&](Ulp& u) -> sim::Co<void> {
    switch (u.inst()) {
      case 0: {  // host1: sends 100 kB locally (ULP2) and remotely (ULP1)
        u.initsend().pk_double(std::vector<double>(12'500, 0.0));
        co_await u.send(2, 1);
        u.initsend().pk_double(std::vector<double>(12'500, 0.0));
        co_await u.send(1, 1);
        break;
      }
      case 1:
        co_await u.recv(0, 1);
        remote_done = u.host().engine().now();
        break;
      case 2:
        co_await u.recv(0, 1);
        local_done = u.host().engine().now();
        break;
      default: break;
    }
  };
  upvm.run_spmd(main, 3);
  eng.run();
  ASSERT_GT(local_done, 0);
  ASSERT_GT(remote_done, 0);
  EXPECT_LT(local_done, remote_done - 0.05);
}

TEST_F(UpvmTest, CooperativeSchedulingOneUlpComputesAtATime) {
  start_upvm();
  const double t0 = eng.now();  // containers up; ULP mains start here
  double done0 = -1, done2 = -1;
  auto main = [&](Ulp& u) -> sim::Co<void> {
    if (u.inst() == 0) {
      co_await u.compute(4.0);
      done0 = u.host().engine().now();
    } else if (u.inst() == 2) {
      co_await u.compute(4.0);
      done2 = u.host().engine().now();
    }
  };
  upvm.run_spmd(main, 3);  // 0 and 2 co-resident on host1
  eng.run();
  // Non-preemptive user-level scheduling: the second ULP starts only after
  // the first finishes its burst; total ~8s, not ~8s-of-shared-time each.
  EXPECT_NEAR(done0 - t0, 4.0, 0.1);
  EXPECT_NEAR(done2 - t0, 8.0, 0.1);
}

TEST_F(UpvmTest, BlockedRecvDeschedulesAndLetsOthersRun) {
  start_upvm();
  const double t0 = eng.now();
  double computer_done = -1;
  bool receiver_got = false;
  auto main = [&](Ulp& u) -> sim::Co<void> {
    if (u.inst() == 0) {
      co_await u.recv(-1, 9);  // blocks; must not hold the processor
      receiver_got = true;
    } else if (u.inst() == 2) {
      co_await u.compute(3.0);
      computer_done = u.host().engine().now();
      u.initsend().pk_int(1);
      co_await u.send(0, 9);
    }
  };
  upvm.run_spmd(main, 3);
  eng.run();
  EXPECT_NEAR(computer_done - t0, 3.0, 0.1);
  EXPECT_TRUE(receiver_got);
}

TEST_F(UpvmTest, MigrateIdleUlp) {
  start_upvm();
  bool finished = false;
  auto main = [&](Ulp& u) -> sim::Co<void> {
    if (u.inst() == 0) {
      u.set_data_bytes(100'000);
      co_await u.recv(-1, 5);  // waits through the migration
      EXPECT_EQ(&u.host(), &host2);
      finished = true;
    } else {
      co_await sim::Delay(eng, 30.0);
      u.initsend().pk_int(1);
      co_await u.send(0, 5);
    }
  };
  upvm.run_spmd(main, 2);
  auto driver = [&]() -> sim::Proc {
    co_await sim::Delay(eng, 2.0);
    UlpMigrationStats s = co_await upvm.migrate_ulp(0, host2);
    EXPECT_GT(s.obtrusiveness(), 1.0);
    EXPECT_GT(s.migration_time(), s.obtrusiveness());
  };
  sim::spawn(eng, driver());
  eng.run();
  EXPECT_TRUE(finished);
}

TEST_F(UpvmTest, MigrateComputingUlpResumesRemainingWork) {
  start_upvm();
  double finished_at = -1;
  auto main = [&](Ulp& u) -> sim::Co<void> {
    if (u.inst() == 0) {
      u.set_data_bytes(50'000);
      co_await u.compute(20.0);
      finished_at = eng.now();
      EXPECT_EQ(&u.host(), &host2);
    }
  };
  upvm.run_spmd(main, 2);
  auto driver = [&]() -> sim::Proc {
    co_await sim::Delay(eng, 5.0);
    co_await upvm.migrate_ulp(0, host2);
  };
  sim::spawn(eng, driver());
  eng.run();
  // 20s of work + migration dead time (accept path ~5s fixed).
  EXPECT_GT(finished_at, 20.0);
  EXPECT_LT(finished_at, 30.0);
}

TEST_F(UpvmTest, MessagesRedirectedDuringMigrationNotLost) {
  start_upvm();
  std::vector<int> got;
  auto main = [&](Ulp& u) -> sim::Co<void> {
    if (u.inst() == 0) {
      u.set_data_bytes(500'000);
      for (int i = 0; i < 20; ++i) {
        co_await u.recv(-1, 3);
        got.push_back(u.rbuf().upk_int());
      }
    } else {
      for (int i = 0; i < 20; ++i) {
        u.initsend().pk_int(i);
        co_await u.send(0, 3);
        co_await sim::Delay(eng, 0.8);
      }
    }
  };
  upvm.run_spmd(main, 2);
  auto driver = [&]() -> sim::Proc {
    co_await sim::Delay(eng, 4.0);
    co_await upvm.migrate_ulp(0, host2);
  };
  sim::spawn(eng, driver());
  eng.run();
  std::vector<int> expect(20);
  for (int i = 0; i < 20; ++i) expect[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(got, expect);
}

TEST_F(UpvmTest, Table4ShapeAtPointSixMegabytes) {
  // Paper Table 4: 0.6 MB data -> ULP holds 0.3 MB; obtrusiveness 1.67 s,
  // migration 6.88 s (the slow accept path).  Like the paper's measurement,
  // the application quiesces around the migration, so the destination CPU
  // is idle during the accept.
  start_upvm();
  auto main = [&](Ulp& u) -> sim::Co<void> {
    if (u.inst() == 0) {
      u.set_data_bytes(300'000);
      u.set_heap_bytes(0);
      co_await u.compute(100.0);
    } else {
      co_await u.compute(1.0);  // idle by migration time
      co_await u.recv(-1, 99);  // parks forever
    }
  };
  upvm.run_spmd(main, 2);
  std::optional<UlpMigrationStats> stats;
  auto driver = [&]() -> sim::Proc {
    co_await sim::Delay(eng, 2.0);
    stats = co_await upvm.migrate_ulp(0, host2);
  };
  sim::spawn(eng, driver());
  eng.run_until(60.0);
  ASSERT_TRUE(stats.has_value());
  EXPECT_NEAR(stats->obtrusiveness(), 1.67, 0.35);
  EXPECT_NEAR(stats->migration_time(), 6.88, 1.0);
}

TEST_F(UpvmTest, OptimizedAcceptIsMuchFaster) {
  // Ablation A4: the fix the authors said they were working on (§4.2.3).
  auto run_with = [&](bool optimized) {
    sim::Engine e;
    net::Network n(e);
    os::Host a(e, n, os::HostConfig("a"));
    os::Host b(e, n, os::HostConfig("b"));
    pvm::PvmSystem v(e, n);
    v.add_host(a);
    v.add_host(b);
    UpvmOptions opts;
    opts.optimized_accept = optimized;
    Upvm u(v, opts);
    sim::spawn(e, u.start());
    e.run();
    u.run_spmd(
        [](Ulp& ulp) -> sim::Co<void> {
          if (ulp.inst() == 0) ulp.set_data_bytes(300'000);
          co_await ulp.compute(100.0);
        },
        2);
    double migration = -1;
    auto driver = [&]() -> sim::Proc {
      co_await sim::Delay(e, 2.0);
      UlpMigrationStats s = co_await u.migrate_ulp(0, b);
      migration = s.migration_time();
    };
    sim::spawn(e, driver());
    e.run_until(60.0);
    return migration;
  };
  const double slow = run_with(false);
  const double fast = run_with(true);
  EXPECT_GT(slow, fast + 4.0);  // the ~5 s accept penalty disappears
}

TEST(UpvmHeterogeneity, MigrationToIncompatibleArchRefused) {
  sim::Engine eng;
  net::Network net(eng);
  os::Host hppa(eng, net, os::HostConfig("hppa1", "HPPA", 1.0));
  os::Host alien(eng, net, os::HostConfig("alien", "SPARC", 1.0));
  pvm::PvmSystem vm(eng, net);
  vm.add_host(hppa);
  vm.add_host(alien);
  Upvm upvm(vm);
  sim::spawn(eng, upvm.start());
  eng.run();
  upvm.run_spmd(
      [](Ulp& u) -> sim::Co<void> { co_await u.compute(50.0); }, 2);
  bool threw = false;
  auto driver = [&]() -> sim::Proc {
    co_await sim::Delay(eng, 1.0);
    try {
      co_await upvm.migrate_ulp(0, alien);
    } catch (const Error&) {
      threw = true;
    }
  };
  sim::spawn(eng, driver());
  eng.run_until(60.0);
  EXPECT_TRUE(threw);
}

TEST_F(UpvmTest, FinerGranularityThanProcessMigration) {
  // §3.4: UPVM moves one ULP; the rest of the container's ULPs stay put.
  start_upvm();
  upvm.run_spmd(
      [](Ulp& u) -> sim::Co<void> {
        if (u.inst() % 2 == 0) u.set_data_bytes(10'000);
        co_await u.compute(200.0);
      },
      6);  // host1: 0,2,4; host2: 1,3,5
  auto driver = [&]() -> sim::Proc {
    co_await sim::Delay(eng, 1.0);
    co_await upvm.migrate_ulp(2, host2);
  };
  sim::spawn(eng, driver());
  eng.run_until(40.0);
  EXPECT_EQ(upvm.containers()[0]->resident_ulps(), 2u);
  EXPECT_EQ(upvm.containers()[1]->resident_ulps(), 4u);
  EXPECT_EQ(&upvm.ulp(0)->host(), &host1);
  EXPECT_EQ(&upvm.ulp(2)->host(), &host2);
  EXPECT_EQ(&upvm.ulp(4)->host(), &host1);
}

TEST_F(UpvmTest, FormatAddressMapShowsResidency) {
  start_upvm();
  upvm.run_spmd([](Ulp&) -> sim::Co<void> { co_return; }, 3);
  const std::string s = upvm.format_address_map();
  EXPECT_NE(s.find("ULP0"), std::string::npos);
  EXPECT_NE(s.find("ULP2"), std::string::npos);
  EXPECT_NE(s.find("host1"), std::string::npos);
  eng.run();
}

TEST_F(UpvmTest, ShutdownDrainsContainers) {
  start_upvm();
  upvm.run_spmd([](Ulp&) -> sim::Co<void> { co_return; }, 2);
  auto driver = [&]() -> sim::Proc {
    co_await upvm.wait_all_ulps();
    upvm.shutdown();
  };
  sim::spawn(eng, driver());
  eng.run();
  EXPECT_EQ(vm.live_task_count(), 0u);
}

TEST_F(UpvmTest, UlpTeardownReleasesVaRegions) {
  // The VA-leak regression: a finished ULP returns its §3.2.2 region.
  // Before the fix nothing ever called release(), so allocated() stayed at
  // its high-water mark forever and the budget was a lifetime cap rather
  // than a live cap.
  start_upvm();
  upvm.run_spmd(
      [](Ulp& u) -> sim::Co<void> {
        // Stagger exits so regions come back one by one, not in a burst.
        co_await u.compute(0.5 * (u.inst() + 1));
      },
      6);
  EXPECT_EQ(upvm.address_map().allocated(), 6u);
  auto driver = [&]() -> sim::Proc { co_await upvm.wait_all_ulps(); };
  sim::spawn(eng, driver());
  eng.run();
  EXPECT_EQ(upvm.address_map().allocated(), 0u) << "ULP exit leaked regions";
  EXPECT_TRUE(upvm.address_map().disjoint());
}

}  // namespace
}  // namespace cpe::upvm
