// UPVM migration edge cases beyond the basic suite.
#include <gtest/gtest.h>

#include "upvm/upvm.hpp"

namespace cpe::upvm {
namespace {

struct UpvmMigTest : ::testing::Test {
  sim::Engine eng;
  net::Network net{eng};
  os::Host host1{eng, net, os::HostConfig("host1", "HPPA", 1.0)};
  os::Host host2{eng, net, os::HostConfig("host2", "HPPA", 1.0)};
  os::Host host3{eng, net, os::HostConfig("host3", "HPPA", 1.0)};
  pvm::PvmSystem vm{eng, net};
  Upvm upvm{vm};

  UpvmMigTest() {
    vm.add_host(host1);
    vm.add_host(host2);
    vm.add_host(host3);
    sim::spawn(eng, upvm.start());
    eng.run();
  }
};

TEST_F(UpvmMigTest, ConcurrentMigrationsOfDifferentUlps) {
  upvm.run_spmd(
      [](Ulp& u) -> sim::Co<void> {
        u.set_data_bytes(100'000);
        co_await u.compute(60.0);
      },
      3);
  auto driver = [&]() -> sim::Proc {
    co_await sim::Delay(eng, 2.0);
    auto mig = [](Upvm* up, int inst, os::Host* dst) -> sim::Proc {
      co_await up->migrate_ulp(inst, *dst);
    };
    sim::spawn(eng, mig(&upvm, 0, &host3));  // from host1
    sim::spawn(eng, mig(&upvm, 1, &host3));  // from host2
  };
  sim::spawn(eng, driver());
  eng.run();
  EXPECT_EQ(upvm.history().size(), 2u);
  EXPECT_EQ(&upvm.ulp(0)->host(), &host3);
  EXPECT_EQ(&upvm.ulp(1)->host(), &host3);
}

TEST_F(UpvmMigTest, DoubleMigrationOfSameUlpRefused) {
  upvm.run_spmd(
      [](Ulp& u) -> sim::Co<void> {
        u.set_data_bytes(4'000'000);  // slow: the first migration lingers
        co_await u.compute(100.0);
      },
      2);
  bool threw = false;
  auto driver = [&]() -> sim::Proc {
    co_await sim::Delay(eng, 1.0);
    auto first = [](Upvm* up, os::Host* dst) -> sim::Proc {
      co_await up->migrate_ulp(0, *dst);
    };
    sim::spawn(eng, first(&upvm, &host2));
    co_await sim::Delay(eng, 1.0);  // first still in flight
    try {
      co_await upvm.migrate_ulp(0, host3);
    } catch (const Error&) {
      threw = true;
    }
  };
  sim::spawn(eng, driver());
  eng.run_until(120.0);
  EXPECT_TRUE(threw);
}

TEST_F(UpvmMigTest, MigrateUlpTwiceSequentially) {
  double finished = -1;
  upvm.run_spmd(
      [&](Ulp& u) -> sim::Co<void> {
        if (u.inst() == 0) {
          u.set_data_bytes(50'000);
          co_await u.compute(40.0);
          finished = eng.now();
        }
      },
      2);
  auto driver = [&]() -> sim::Proc {
    co_await sim::Delay(eng, 2.0);
    co_await upvm.migrate_ulp(0, host2);
    co_await sim::Delay(eng, 2.0);
    co_await upvm.migrate_ulp(0, host3);
  };
  sim::spawn(eng, driver());
  eng.run();
  EXPECT_EQ(&upvm.ulp(0)->host(), &host3);
  EXPECT_GT(finished, 40.0);
  EXPECT_EQ(upvm.history().size(), 2u);
}

TEST_F(UpvmMigTest, QueuedMessagesCountTowardStateSize) {
  // A ULP with unread mail migrates; the buffers travel as state (§2.2
  // stage 3: "including unreceived messages").
  upvm.run_spmd(
      [&](Ulp& u) -> sim::Co<void> {
        if (u.inst() == 1) {
          // Flood ULP 0 with 5 x 40 kB messages it has not received yet.
          for (int i = 0; i < 5; ++i) {
            u.initsend().pk_double(std::vector<double>(5000, 1.0));
            co_await u.send(0, 9);
          }
        } else if (u.inst() == 0) {
          u.set_data_bytes(10'000);
          co_await sim::Delay(eng, 30.0);  // mail piles up; migration hits
          for (int i = 0; i < 5; ++i) co_await u.recv(-1, 9);
        }
      },
      2);
  UlpMigrationStats stats;
  auto driver = [&]() -> sim::Proc {
    co_await sim::Delay(eng, 10.0);
    stats = co_await upvm.migrate_ulp(0, host2);
  };
  sim::spawn(eng, driver());
  eng.run();
  // image (10k data + stack + ctx) plus ~200 kB of queued buffers.
  EXPECT_GT(stats.state_bytes, 200'000u);
}

TEST_F(UpvmMigTest, YieldLetsPeersRun) {
  std::vector<int> order;
  upvm.run_spmd(
      [&](Ulp& u) -> sim::Co<void> {
        if (u.inst() == 0 || u.inst() == 2) {  // co-resident on host1 (0) /
          for (int i = 0; i < 3; ++i) {        // host3 (2)... both solo hosts
            co_await u.compute(1.0);
            order.push_back(u.inst());
            co_await u.yield();
          }
        }
      },
      3);
  eng.run();
  EXPECT_EQ(order.size(), 6u);
}

TEST_F(UpvmMigTest, HistoryRecordsHostsAndBytes) {
  upvm.run_spmd(
      [](Ulp& u) -> sim::Co<void> {
        u.set_data_bytes(123'000);
        co_await u.compute(50.0);
      },
      1);
  auto driver = [&]() -> sim::Proc {
    co_await sim::Delay(eng, 1.0);
    co_await upvm.migrate_ulp(0, host2);
  };
  sim::spawn(eng, driver());
  eng.run();
  ASSERT_EQ(upvm.history().size(), 1u);
  const UlpMigrationStats& s = upvm.history()[0];
  EXPECT_EQ(s.from_host, "host1");
  EXPECT_EQ(s.to_host, "host2");
  EXPECT_GT(s.state_bytes, 123'000u);
  EXPECT_LE(s.captured_time, s.flush_done);
  EXPECT_LE(s.flush_done, s.offload_done);
  EXPECT_LE(s.offload_done, s.accept_done);
}

}  // namespace
}  // namespace cpe::upvm

namespace cpe::upvm {
namespace {

TEST(UpvmSafePoints, MigrationWaitsForSegmentBoundary) {
  // The DPC-style restriction (§5.0): no mid-burst interrupts.
  sim::Engine eng;
  net::Network net(eng);
  os::Host host1(eng, net, os::HostConfig("host1", "HPPA", 1.0));
  os::Host host2(eng, net, os::HostConfig("host2", "HPPA", 1.0));
  pvm::PvmSystem vm(eng, net);
  vm.add_host(host1);
  vm.add_host(host2);
  UpvmOptions opts;
  opts.migrate_at_safe_points_only = true;
  Upvm upvm(vm, opts);
  sim::spawn(eng, upvm.start());
  eng.run();
  upvm.run_spmd(
      [](Ulp& u) -> sim::Co<void> {
        if (u.inst() == 0)
          for (int i = 0; i < 5; ++i) co_await u.compute(8.0);  // 8 s segments
      },
      2);
  UlpMigrationStats stats;
  auto gs = [&]() -> sim::Proc {
    co_await sim::Delay(eng, 2.0);  // ~6 s left in the first segment
    stats = co_await upvm.migrate_ulp(0, host2);
  };
  sim::spawn(eng, gs());
  eng.run();
  // Context captured only once the running segment completed.
  EXPECT_GT(stats.captured_time - stats.event_time, 4.0);
  EXPECT_EQ(&upvm.ulp(0)->host(), &host2);
}

}  // namespace
}  // namespace cpe::upvm
