#include "svc/arrival.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace cpe::svc {
namespace {

TEST(PoissonArrivals, MeanGapMatchesRate) {
  PoissonArrivals a(50.0, 7);
  double sum = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const auto gap = a.next_gap(0);
    ASSERT_TRUE(gap.has_value());
    ASSERT_GE(*gap, 0);
    sum += *gap;
  }
  EXPECT_NEAR(sum / kDraws, 1.0 / 50.0, 0.001);
}

TEST(PoissonArrivals, SeededAndReproducible) {
  PoissonArrivals a(10.0, 42);
  PoissonArrivals b(10.0, 42);
  PoissonArrivals c(10.0, 43);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto ga = a.next_gap(0);
    EXPECT_EQ(ga, b.next_gap(0));
    if (ga != c.next_gap(0)) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(DiurnalArrivals, RateFollowsTheSinusoid) {
  DiurnalArrivals a(100.0, 0.8, 86400.0, 1);
  EXPECT_NEAR(a.rate_at(0), 100.0, 1e-9);
  EXPECT_NEAR(a.rate_at(86400.0 / 4), 180.0, 1e-9);    // peak
  EXPECT_NEAR(a.rate_at(3 * 86400.0 / 4), 20.0, 1e-9);  // trough
}

TEST(DiurnalArrivals, ThinningTracksTheModulatedRate) {
  // Count arrivals in a window around the peak and around the trough; the
  // ratio must reflect the modulation (peak 1.5x base vs trough 0.5x).
  DiurnalArrivals peak_gen(200.0, 0.5, 1000.0, 9);
  sim::Time t = 250.0 - 50.0;  // window [200, 300] straddles the peak
  int peak_n = 0;
  while (t < 300.0) {
    t += *peak_gen.next_gap(t);
    ++peak_n;
  }
  DiurnalArrivals trough_gen(200.0, 0.5, 1000.0, 9);
  t = 750.0 - 50.0;  // window [700, 800] straddles the trough
  int trough_n = 0;
  while (t < 800.0) {
    t += *trough_gen.next_gap(t);
    ++trough_n;
  }
  EXPECT_GT(peak_n, 2 * trough_n);
}

TEST(TraceReplay, ReplaysOffsetsFromFirstPull) {
  TraceReplay a({0.0, 0.5, 0.5, 2.0});
  sim::Time now = 10.0;  // replay starts at engine time 10
  EXPECT_EQ(*a.next_gap(now), 0.0);
  EXPECT_EQ(*a.next_gap(now), 0.5);
  now += 0.5;
  EXPECT_EQ(*a.next_gap(now), 0.0);  // same stamp: simultaneous arrival
  EXPECT_EQ(*a.next_gap(now), 1.5);
  EXPECT_FALSE(a.next_gap(now + 1.5).has_value());  // exhausted
  EXPECT_EQ(a.remaining(), 0u);
}

// Satellite regression: out-of-order stamps must never become a negative
// delay into the calendar queue — strict mode rejects them at construction
// with a named contract message, sort mode fixes them up front.
TEST(TraceReplay, OutOfOrderStampsRejectedByName) {
  try {
    TraceReplay bad({1.0, 0.5, 2.0});
    FAIL() << "out-of-order trace accepted in strict mode";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "svc::TraceReplay stamps must be non-decreasing"),
              std::string::npos)
        << "unexpected message: " << e.what();
  }
}

TEST(TraceReplay, SortModeOrdersAndGapsStayNonNegative) {
  TraceReplay a({1.0, 0.5, 2.0, 0.0}, ReplayOrder::kSort);
  sim::Time now = 0;
  double prev_abs = -1;
  while (const auto gap = a.next_gap(now)) {
    ASSERT_GE(*gap, 0.0);
    now += *gap;
    ASSERT_GE(now, prev_abs);
    prev_abs = now;
  }
  EXPECT_EQ(now, 2.0);
}

TEST(TraceReplay, NegativeOrNonFiniteStampsRejected) {
  EXPECT_THROW((TraceReplay({-1.0, 0.0})), ContractError);
  EXPECT_THROW((TraceReplay({0.0, std::nan("")}, ReplayOrder::kSort)),
               ContractError);
}

}  // namespace
}  // namespace cpe::svc
