#include "svc/frontend.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "fault/fault.hpp"
#include "net/network.hpp"
#include "obs/audit.hpp"
#include "svc/arrival.hpp"

namespace cpe::svc {
namespace {

struct SvcEnv : ::testing::Test {
  sim::Engine eng;
  net::Network net{eng};
  os::Host fe{eng, net, os::HostConfig("fe", "HPPA", 1.0)};
  os::Host w0{eng, net, os::HostConfig("w0", "HPPA", 1.0)};
  os::Host w1{eng, net, os::HostConfig("w1", "HPPA", 1.0)};
  os::Host w2{eng, net, os::HostConfig("w2", "HPPA", 1.0)};
  pvm::PvmSystem vm{eng, net};

  SvcEnv() {
    vm.add_host(fe);
    vm.add_host(w0);
    vm.add_host(w1);
    vm.add_host(w2);
  }

  [[nodiscard]] std::set<std::int64_t> serve_tracks() const {
    std::set<std::int64_t> tracks;
    for (const obs::SpanRecord& s : vm.spans().spans())
      if (s.name == "svc.serve") tracks.insert(s.track);
    return tracks;
  }
};

TEST_F(SvcEnv, OpenLoopRunResolvesEveryRequestExactlyOnce) {
  FrontendOptions opt;
  opt.route = RouteKind::kRoundRobin;
  opt.service_demand = 5e-3;
  opt.timeout = 1.0;
  Frontend front(vm, std::make_unique<PoissonArrivals>(150.0, 11), opt);
  front.launch(fe, {&w0, &w1, &w2}, 4.0);
  eng.run_until(4.0 + opt.timeout + 10.0);

  EXPECT_GT(front.issued(), 300u);
  EXPECT_EQ(front.issued(),
            front.completed() + front.timeouts() + front.rejected());
  EXPECT_EQ(front.pending_count(), 0u);
  EXPECT_EQ(front.rejected(), 0u);
  EXPECT_EQ(vm.metrics().gauge("svc.requests_inflight").value(), 0.0);
  EXPECT_EQ(vm.metrics().histogram("svc.latency").count(), front.issued());
  EXPECT_EQ(vm.metrics().counter("svc.completed").value(), front.completed());

  // Round-robin over three healthy workers exercises all of them.
  EXPECT_EQ(serve_tracks().size(), 3u);

  const obs::TraceAuditor auditor(vm.spans());
  EXPECT_TRUE(auditor.ok()) << obs::TraceAuditor::format(auditor.audit());
}

TEST_F(SvcEnv, LocalityAffineWithOneKeyPinsOneWorker) {
  FrontendOptions opt;
  opt.route = RouteKind::kLocalityAffine;
  opt.affinity_keys = 1;  // every request shares the one home worker
  opt.service_demand = 2e-3;
  Frontend front(vm, std::make_unique<PoissonArrivals>(80.0, 3), opt);
  front.launch(fe, {&w0, &w1, &w2}, 3.0);
  eng.run_until(3.0 + opt.timeout + 10.0);

  EXPECT_GT(front.completed(), 100u);
  EXPECT_EQ(serve_tracks().size(), 1u);
}

TEST_F(SvcEnv, OverloadedWorkerTimesOutCensored) {
  FrontendOptions opt;
  opt.route = RouteKind::kRoundRobin;
  opt.service_demand = 30.0;  // far beyond the deadline
  opt.timeout = 0.25;
  Frontend front(vm, std::make_unique<PoissonArrivals>(40.0, 5), opt);
  front.launch(fe, {&w0}, 2.0);
  eng.run_until(2.0 + opt.timeout + 5.0);

  EXPECT_GT(front.issued(), 40u);
  EXPECT_EQ(front.completed(), 0u);
  EXPECT_EQ(front.timeouts(), front.issued());
  EXPECT_EQ(front.pending_count(), 0u);
  // Censored observations: the whole latency distribution sits at the
  // timeout bound instead of vanishing.
  EXPECT_EQ(vm.metrics().histogram("svc.latency").count(), front.issued());
  EXPECT_GE(vm.metrics().histogram("svc.latency").quantile(0.5), 0.2);

  // Aborted request roots carry the timeout reason; the auditor accepts
  // serve legs still open under them (the client gave up, invariant 9).
  std::size_t aborted = 0;
  for (const obs::SpanRecord& s : vm.spans().spans())
    if (s.name == "svc.request") {
      ASSERT_EQ(s.status, obs::SpanStatus::kAborted);
      ASSERT_NE(s.attr("timeout"), nullptr);
      ++aborted;
    }
  EXPECT_GT(aborted, 0u);
  const obs::TraceAuditor auditor(vm.spans());
  EXPECT_TRUE(auditor.ok()) << obs::TraceAuditor::format(auditor.audit());
}

TEST_F(SvcEnv, DeadWorkerHostsRejectNewRequests) {
  FrontendOptions opt;
  opt.service_demand = 2e-3;
  opt.timeout = 0.5;
  Frontend front(vm, std::make_unique<PoissonArrivals>(60.0, 8), opt);
  front.launch(fe, {&w0, &w1}, 4.0);
  // Spawning the frontend + workers costs ~1 virtual second of daemon RPCs
  // and image pushes; crash well after that so some requests complete first.
  fault::FaultPlan plan(eng);
  plan.crash_at(w0, 2.5);
  plan.crash_at(w1, 2.5);
  eng.run_until(4.0 + opt.timeout + 10.0);

  EXPECT_GT(front.rejected(), 0u);
  EXPECT_GT(front.completed(), 0u);
  EXPECT_EQ(front.issued(),
            front.completed() + front.timeouts() + front.rejected());
  EXPECT_EQ(front.pending_count(), 0u);
  const obs::TraceAuditor auditor(vm.spans());
  EXPECT_TRUE(auditor.ok()) << obs::TraceAuditor::format(auditor.audit());
}

TEST_F(SvcEnv, InflightGaugeTracksOutstandingRequests) {
  FrontendOptions opt;
  opt.service_demand = 0.5;  // slow enough to pile up
  opt.timeout = 5.0;
  Frontend front(vm, std::make_unique<PoissonArrivals>(30.0, 2), opt);
  front.launch(fe, {&w0, &w1}, 2.0);
  double mid_run = 0;
  eng.schedule_at(1.5, [&] {
    mid_run = vm.metrics().gauge("svc.requests_inflight").value();
  });
  eng.run_until(2.0 + opt.timeout + 10.0);
  EXPECT_GT(mid_run, 0.0);
  EXPECT_EQ(vm.metrics().gauge("svc.requests_inflight").value(), 0.0);
  EXPECT_GT(front.outstanding_on(w0) + front.outstanding_on(w1), -1.0);
}

}  // namespace
}  // namespace cpe::svc
