// AdmissionController: bounded-concurrency admission for migration streams
// (DESIGN.md §12) — budget, pair-conflict and reverse-pair refusals, stall
// detection for the deadlock watchdog, and failover adoption.
#include "load/placement.hpp"

#include <gtest/gtest.h>

namespace cpe::load {
namespace {

TEST(AdmissionController, BudgetCapsConcurrentStreams) {
  AdmissionController ac(2);
  EXPECT_EQ(ac.max_concurrent(), 2);
  const auto t1 = ac.admit(1, "h1", "h2", 0.0);
  const auto t2 = ac.admit(2, "h1", "h3", 0.0);
  EXPECT_NE(t1, 0u);
  EXPECT_NE(t2, 0u);
  EXPECT_EQ(ac.active(), 2u);
  EXPECT_FALSE(ac.would_admit("h1", "h4"));
  EXPECT_EQ(ac.admit(3, "h1", "h4", 0.0), 0u);  // over budget
  EXPECT_EQ(ac.refusals(), 1u);
  ac.release(t1);
  EXPECT_TRUE(ac.would_admit("h1", "h4"));
  EXPECT_NE(ac.admit(3, "h1", "h4", 1.0), 0u);
}

TEST(AdmissionController, OnePairLanePerOrderedHostPair) {
  AdmissionController ac(8);
  ASSERT_NE(ac.admit(1, "h1", "h2", 0.0), 0u);
  EXPECT_FALSE(ac.would_admit("h1", "h2"));   // lane busy
  EXPECT_EQ(ac.admit(2, "h1", "h2", 0.0), 0u);
  EXPECT_TRUE(ac.would_admit("h1", "h3"));    // different lane is free
  EXPECT_NE(ac.admit(2, "h1", "h3", 0.0), 0u);
}

TEST(AdmissionController, ReversePairIsThrashAndRefused) {
  AdmissionController ac(8);
  ASSERT_NE(ac.admit(1, "h1", "h2", 0.0), 0u);
  EXPECT_FALSE(ac.would_admit("h2", "h1"));
  EXPECT_EQ(ac.admit(2, "h2", "h1", 0.0), 0u);
  EXPECT_EQ(ac.refusals(), 1u);
}

TEST(AdmissionController, SameUnitNeverAdmittedTwice) {
  AdmissionController ac(8);
  ASSERT_NE(ac.admit(7, "h1", "h2", 0.0), 0u);
  EXPECT_TRUE(ac.unit_in_flight(7));
  EXPECT_EQ(ac.admit(7, "h1", "h3", 0.0), 0u);
  EXPECT_EQ(ac.refusals(), 1u);
}

TEST(AdmissionController, WouldAdmitIsAProbeNotAClaim) {
  AdmissionController ac(1);
  EXPECT_TRUE(ac.would_admit("h1", "h2"));
  EXPECT_EQ(ac.active(), 0u);
  EXPECT_EQ(ac.refusals(), 0u);  // probes are free
}

TEST(AdmissionController, StalledFiltersByAge) {
  AdmissionController ac(8);
  ASSERT_NE(ac.admit(1, "h1", "h2", 0.0), 0u);
  ASSERT_NE(ac.admit(2, "h1", "h3", 50.0), 0u);
  const auto stalled = ac.stalled(/*now=*/61.0, /*age=*/60.0);
  ASSERT_EQ(stalled.size(), 1u);
  EXPECT_EQ(stalled[0].unit, 1);
}

TEST(AdmissionController, AdoptedEntriesCountAgainstBudgetUntilReaped) {
  AdmissionController ac(2);
  const auto own = ac.admit(1, "h1", "h2", 0.0);
  ASSERT_NE(own, 0u);
  // Failover: a predecessor had two streams, one of them for our own unit.
  std::vector<AdmissionController::InFlight> prev;
  prev.emplace_back(1, "h1", "h2", 0.0, 99, false);  // already ours: skipped
  prev.emplace_back(5, "h3", "h4", 0.0, 98, false);
  ac.import_adopted(prev, /*now=*/10.0);
  EXPECT_EQ(ac.active(), 2u);
  EXPECT_FALSE(ac.would_admit("h5", "h6"));  // budget full with the adoption
  // The predecessor's stream resolves: reap frees the slot, ours survives.
  ac.reap_adopted([](std::int64_t) { return false; });
  EXPECT_EQ(ac.active(), 1u);
  EXPECT_TRUE(ac.unit_in_flight(1));
  ac.release(own);
  EXPECT_EQ(ac.active(), 0u);
}

TEST(AdmissionController, ReimportReplacesAdoptedSet) {
  AdmissionController ac(8);
  std::vector<AdmissionController::InFlight> first;
  first.emplace_back(5, "h3", "h4", 0.0, 98, false);
  ac.import_adopted(first, 1.0);
  EXPECT_EQ(ac.active(), 1u);
  std::vector<AdmissionController::InFlight> second;
  second.emplace_back(6, "h4", "h5", 2.0, 97, false);
  ac.import_adopted(second, 3.0);  // replaces, not accumulates
  EXPECT_EQ(ac.active(), 1u);
  EXPECT_TRUE(ac.unit_in_flight(6));
  EXPECT_FALSE(ac.unit_in_flight(5));
}

}  // namespace
}  // namespace cpe::load
