#include "load/placement.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "net/network.hpp"

namespace cpe::load {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A row of HPPA hosts to hang views on (placement only consults name,
/// architecture and pointer identity).
struct PlacementEnv : ::testing::Test {
  sim::Engine eng;
  net::Network net{eng};
  os::Host a{eng, net, os::HostConfig("a", "HPPA", 1.0)};
  os::Host b{eng, net, os::HostConfig("b", "HPPA", 1.0)};
  os::Host c{eng, net, os::HostConfig("c", "HPPA", 1.0)};
  os::Host alien{eng, net, os::HostConfig("alien", "SPARC", 1.0)};

  static HostLoadView view(os::Host& h, double load, int movable = 1,
                           sim::Time age = 0) {
    return HostLoadView(&h, load, load, load, age, movable, true, true);
  }
};

TEST_F(PlacementEnv, PolicyKindNamesRoundTrip) {
  for (const PolicyKind k :
       {PolicyKind::kNone, PolicyKind::kThreshold, PolicyKind::kBestFit,
        PolicyKind::kDestinationSwap, PolicyKind::kWorkSteal})
    EXPECT_EQ(policy_kind_from(to_string(k)), k);
  EXPECT_EQ(policy_kind_from("no-such-policy"), PolicyKind::kThreshold);
}

TEST_F(PlacementEnv, ThresholdIsInertWithInfiniteThreshold) {
  PlacementEngine e(PolicyKind::kThreshold);
  PlacementParams p;  // load_threshold = inf
  EXPECT_TRUE(e.decide({view(a, 9), view(b, 0)}, p).empty());
}

TEST_F(PlacementEnv, ThresholdShedsToTheLowestDestRank) {
  PlacementEngine e(PolicyKind::kThreshold);
  PlacementParams p;
  p.load_threshold = 2.5;
  // b is lighter by instant but c has the lower legacy dest rank.
  std::vector<HostLoadView> views = {view(a, 4), view(b, 1), view(c, 1)};
  views[1].dest_rank = 2.0;  // legacy double-counts external jobs
  views[2].dest_rank = 1.0;
  const auto out = e.decide(views, p);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].from, &a);
  EXPECT_EQ(out[0].to, &c);
  EXPECT_DOUBLE_EQ(out[0].from_load, 4.0);
}

TEST_F(PlacementEnv, ThresholdKeepsTheLegacyPlusOneGuard) {
  PlacementEngine e(PolicyKind::kThreshold);
  PlacementParams p;
  p.load_threshold = 2.5;
  // Destination only 1.0 lighter: the legacy guard refuses the move.
  EXPECT_TRUE(e.decide({view(a, 3), view(b, 2)}, p).empty());
  // A hair more than 1.0 lighter: allowed.
  EXPECT_EQ(e.decide({view(a, 3.1), view(b, 2)}, p).size(), 1u);
}

TEST_F(PlacementEnv, ThresholdIgnoresIncompatibleAndDownHosts) {
  PlacementEngine e(PolicyKind::kThreshold);
  PlacementParams p;
  p.load_threshold = 2.5;
  std::vector<HostLoadView> views = {view(a, 5), view(alien, 0), view(b, 0)};
  views[2].up = false;
  EXPECT_TRUE(e.decide(views, p).empty());  // alien arch, b down
}

TEST_F(PlacementEnv, BestFitRequiresTheImprovementMargin) {
  PlacementEngine e(PolicyKind::kBestFit);
  PlacementParams p;
  p.load_threshold = 2.0;
  p.improvement_margin = 0.5;
  // gap 2.4: gain = 2.4 - 1 = 1.4 >= margin -> move.
  EXPECT_EQ(e.decide({view(a, 3.4), view(b, 1.0)}, p).size(), 1u);
  // gap 1.2: gain = 0.2 < margin -> no move.
  EXPECT_TRUE(e.decide({view(a, 3.2), view(b, 2.0)}, p).empty());
}

TEST_F(PlacementEnv, BestFitAmortizesTheMigrationCost) {
  PlacementEngine e(PolicyKind::kBestFit);
  calib::CostModel costs;
  PlacementParams p;
  p.load_threshold = 2.0;
  p.improvement_margin = 0.5;
  p.costs = &costs;
  p.image_bytes = 64.0 * 1024 * 1024;  // a huge image...
  p.cost_horizon = 1.0;                // ...that must pay off within 1 s
  EXPECT_TRUE(e.decide({view(a, 4), view(b, 0)}, p).empty());
  p.cost_horizon = 600.0;  // ten minutes to amortize: worth it
  EXPECT_EQ(e.decide({view(a, 4), view(b, 0)}, p).size(), 1u);
}

TEST_F(PlacementEnv, BestFitDropsStaleViewsAndEmptyHosts) {
  PlacementEngine e(PolicyKind::kBestFit);
  PlacementParams p;
  p.load_threshold = 2.0;
  p.staleness_bound = 5.0;
  // The overloaded host's entry is stale: don't trust it.
  EXPECT_TRUE(e.decide({view(a, 6, 1, 60.0), view(b, 0)}, p).empty());
  // Fresh but nothing movable on it: nothing to shed.
  EXPECT_TRUE(e.decide({view(a, 6, 0), view(b, 0)}, p).empty());
}

TEST_F(PlacementEnv, BestFitWithoutAThresholdUsesTheMeanIndex) {
  PlacementEngine e(PolicyKind::kBestFit);
  PlacementParams p;  // load_threshold = inf -> mean fallback
  p.improvement_margin = 0.5;
  const auto out = e.decide({view(a, 6), view(b, 0), view(c, 0)}, p);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].from, &a);
}

TEST_F(PlacementEnv, BestFitSpreadsAcrossDestinationsWithinARound) {
  PlacementEngine e(PolicyKind::kBestFit);
  PlacementParams p;
  p.load_threshold = 2.0;
  p.improvement_margin = 0.5;
  // Two overloaded hosts, one cold host: the round's second action must
  // account for the unit already headed to c.
  const auto out = e.decide({view(a, 8), view(b, 8), view(c, 0)}, p);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].to, &c);
  EXPECT_EQ(out[1].to, &c);  // still coldest even at effective load 1
}

TEST_F(PlacementEnv, DestinationSwapNeedsAWideGap) {
  PlacementEngine e(PolicyKind::kDestinationSwap, 42);
  PlacementParams p;
  p.improvement_margin = 0.5;
  // Two hosts: the only pair.  Gap 4 > 2 + 2*0.5 -> move hot -> cold.
  const auto out = e.decide({view(a, 5), view(b, 1)}, p);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].from, &a);
  EXPECT_EQ(out[0].to, &b);
  // Gap 2.5 < 3: moving would let the reverse move qualify later; refuse.
  EXPECT_TRUE(e.decide({view(a, 3.5), view(b, 1)}, p).empty());
}

TEST_F(PlacementEnv, WorkStealColdHostPullsFromTheHottest) {
  PlacementEngine e(PolicyKind::kWorkSteal);
  PlacementParams p;
  p.improvement_margin = 0.5;
  const auto out = e.decide({view(a, 6), view(b, 3), view(c, 0)}, p);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].from, &a);  // hottest donor
  EXPECT_EQ(out[0].to, &c);    // the under-mean initiator
}

TEST_F(PlacementEnv, WorkStealLeavesABalancedRowAlone) {
  PlacementEngine e(PolicyKind::kWorkSteal);
  PlacementParams p;
  p.improvement_margin = 0.5;
  EXPECT_TRUE(e.decide({view(a, 2), view(b, 2), view(c, 2)}, p).empty());
}

TEST_F(PlacementEnv, EngineHysteresisEnforcesMinimumResidency) {
  PlacementEngine e(PolicyKind::kBestFit);
  EXPECT_TRUE(e.may_move(7, 0.0, 5.0));
  e.record_move(7, 0.0, 5.0);
  EXPECT_FALSE(e.may_move(7, 3.0, 5.0));  // inside the window
  EXPECT_EQ(e.residency_rejections(), 1u);
  EXPECT_TRUE(e.may_move(7, 6.0, 5.0));  // window expired
  EXPECT_EQ(e.thrash_violations(), 0u);
}

TEST_F(PlacementEnv, EngineCountsThrashViolations) {
  PlacementEngine e(PolicyKind::kBestFit);
  e.record_move(7, 0.0, 5.0);
  e.record_move(7, 2.0, 5.0);  // moved again inside its window
  EXPECT_EQ(e.thrash_violations(), 1u);
}

TEST_F(PlacementEnv, VacateTouchRestartsTheWindowWithoutCounting) {
  PlacementEngine e(PolicyKind::kBestFit);
  e.record_move(7, 0.0, 5.0);
  e.touch(7, 2.0);  // policy-mandated vacate: exempt
  EXPECT_EQ(e.thrash_violations(), 0u);
  EXPECT_FALSE(e.may_move(7, 4.0, 5.0));  // window restarted at t=2
}

TEST_F(PlacementEnv, EngineSettleWindowBlocksActionsTouchingRecentEndpoints) {
  // After a->b is ordered, the smoothed indices of *both* hosts lie for a
  // while; the engine must refuse index-policy actions touching either
  // endpoint until the window passes, or the pair reverses forever.
  PlacementEngine e(PolicyKind::kBestFit);
  PlacementParams p;
  p.load_threshold = 2.0;
  p.improvement_margin = 0.0;
  e.record_settle(&a, &b, /*now=*/0.0, /*window=*/5.0);
  p.now = 3.0;  // inside the window: b looks hot but may not shed back
  EXPECT_TRUE(e.decide({view(a, 0), view(b, 4), view(c, 0)}, p).empty());
  p.now = 6.0;  // window expired: the same row acts again
  EXPECT_FALSE(e.decide({view(a, 0), view(b, 4), view(c, 0)}, p).empty());
  // Threshold (live loads, byte-identical contract) ignores the filter.
  PlacementEngine t(PolicyKind::kThreshold);
  t.record_settle(&a, &b, 0.0, 5.0);
  p.now = 3.0;
  EXPECT_FALSE(t.decide({view(a, 0), view(b, 4), view(c, 0)}, p).empty());
}

TEST_F(PlacementEnv, QueueWeightSteersBestFitAwayFromBackloggedHosts) {
  PlacementEngine e(PolicyKind::kBestFit);
  PlacementParams p;
  p.load_threshold = 2.0;
  p.improvement_margin = 0.5;
  // b looks coldest by CPU index but is drowning in outstanding requests;
  // c is slightly warmer but idle.  Without the queueing component the
  // policy picks b; with it, the effective index routs the move to c.
  std::vector<HostLoadView> views = {view(a, 6), view(b, 1.0), view(c, 1.5)};
  views[1].outstanding = 12.0;
  auto out = e.decide(views, p);  // queue_weight = 0 (default)
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, &b);
  // eff(b) = 1 + 0.5*12 = 7, eff(c) = 1.5: b flips from the preferred
  // destination to the hottest *source* and everything drains to c.
  p.queue_weight = 0.5;
  out = e.decide(views, p);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].from, &b);
  for (const auto& act : out) EXPECT_EQ(act.to, &c);
}

TEST_F(PlacementEnv, ZeroQueueWeightIgnoresOutstandingEntirely) {
  // Batch users never set queue_weight: decisions must be identical whether
  // the outstanding component is populated or not (ThresholdEquivalenceSweep
  // relies on this staying byte-identical).
  for (const PolicyKind k : {PolicyKind::kThreshold, PolicyKind::kBestFit,
                             PolicyKind::kDestinationSwap,
                             PolicyKind::kWorkSteal}) {
    PlacementEngine with(k, 7);
    PlacementEngine without(k, 7);
    PlacementParams p;
    p.load_threshold = 2.0;
    p.improvement_margin = 0.5;
    std::vector<HostLoadView> loaded = {view(a, 5), view(b, 1), view(c, 0)};
    loaded[2].outstanding = 1e6;  // would repel every policy if counted
    const std::vector<HostLoadView> clean = {view(a, 5), view(b, 1),
                                             view(c, 0)};
    const auto x = with.decide(loaded, p);
    const auto y = without.decide(clean, p);
    ASSERT_EQ(x.size(), y.size()) << to_string(k);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_EQ(x[i].from, y[i].from) << to_string(k);
      EXPECT_EQ(x[i].to, y[i].to) << to_string(k);
    }
  }
}

TEST_F(PlacementEnv, NonePolicyDecidesNothing) {
  PlacementEngine e(PolicyKind::kNone);
  PlacementParams p;
  p.load_threshold = 0.5;
  EXPECT_TRUE(e.decide({view(a, 9), view(b, 0)}, p).empty());
  EXPECT_STREQ(e.name(), "none");
}

}  // namespace
}  // namespace cpe::load
