#include "load/sensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "net/network.hpp"

namespace cpe::load {
namespace {

struct SensorEnv : ::testing::Test {
  sim::Engine eng;
  net::Network net{eng};
  os::Host host{eng, net, os::HostConfig("host1", "HPPA", 1.0)};
  obs::MetricsRegistry metrics;
};

TEST_F(SensorEnv, FirstSampleSetsTheIndexDirectly) {
  host.cpu().set_external_jobs(3);
  LoadSensor s(host, metrics);
  EXPECT_DOUBLE_EQ(s.index(), 3.0);
  EXPECT_DOUBLE_EQ(s.instant(), 3.0);
  EXPECT_GE(s.samples(), 1u);
}

TEST_F(SensorEnv, CpuObserverDrivesEventSamples) {
  LoadSensor s(host, metrics);
  const std::uint64_t before = s.samples();
  host.cpu().set_external_jobs(4);  // runnable-set change fires the observer
  EXPECT_GT(s.samples(), before);
  EXPECT_DOUBLE_EQ(s.instant(), 4.0);
}

TEST_F(SensorEnv, SameInstantBurstDoesNotMoveTheIndex) {
  LoadSensor s(host, metrics);
  const double i0 = s.index();
  // All at t=0: the age-decay weight is exp(0) = 1, so a burst of samples
  // in one instant leaves the smoothed index where it was.
  host.cpu().set_external_jobs(8);
  host.cpu().set_external_jobs(2);
  host.cpu().set_external_jobs(8);
  EXPECT_DOUBLE_EQ(s.index(), i0);
  EXPECT_DOUBLE_EQ(s.instant(), 8.0);
}

TEST_F(SensorEnv, IndexConvergesWithAgeAwareDecay) {
  SensorPolicy p;
  p.time_constant = 5.0;
  LoadSensor s(host, metrics, p);  // index 0 at t=0
  host.cpu().set_external_jobs(6);
  auto driver = [](sim::Engine* e, LoadSensor* sensor) -> sim::Co<void> {
    co_await sim::Delay(*e, 10.0);
    sensor->sample();
  };
  sim::spawn(eng, driver(&eng, &s));
  eng.run();
  // One sample after 10 s: w = exp(-10/5), index = w*0 + (1-w)*6.
  const double w = std::exp(-10.0 / 5.0);
  EXPECT_NEAR(s.index(), (1.0 - w) * 6.0, 1e-9);
}

TEST_F(SensorEnv, ConvergenceIsCadenceIndependentForConstantLoad) {
  // Two identical hosts under the same constant load, one sampled every
  // 0.1 s and one sampled once at the end, land on the same index.
  os::Host other(eng, net, os::HostConfig("host2", "HPPA", 1.0));
  host.cpu().set_external_jobs(5);
  other.cpu().set_external_jobs(5);
  LoadSensor fine(host, metrics);
  LoadSensor coarse(other, metrics);
  auto fine_driver = [](sim::Engine* e, LoadSensor* s) -> sim::Co<void> {
    for (int i = 0; i < 100; ++i) {
      co_await sim::Delay(*e, 0.1);
      s->sample();
    }
  };
  auto coarse_driver = [](sim::Engine* e, LoadSensor* s) -> sim::Co<void> {
    co_await sim::Delay(*e, 10.0);
    s->sample();
  };
  sim::spawn(eng, fine_driver(&eng, &fine));
  sim::spawn(eng, coarse_driver(&eng, &coarse));
  eng.run();
  EXPECT_NEAR(fine.index(), coarse.index(), 1e-9);
}

TEST_F(SensorEnv, PollLoopSamplesWithoutCpuEvents) {
  host.cpu().set_external_jobs(2);
  LoadSensor s(host, metrics);
  const std::uint64_t before = s.samples();
  s.start(5.0);
  eng.run_until(5.0);
  EXPECT_GT(s.samples(), before + 5);  // default 0.5 s poll over 5 s
  EXPECT_GT(s.index(), 1.0);           // converging toward 2
}

TEST_F(SensorEnv, EntryCarriesOwnerActivityAndStamp) {
  host.cpu().set_external_jobs(2);
  LoadSensor s(host, metrics);
  const LoadEntry e = s.entry();
  EXPECT_EQ(e.host, "host1");
  EXPECT_EQ(e.external_jobs, 2);
  EXPECT_TRUE(e.owner_active);
  EXPECT_TRUE(e.up);
  EXPECT_DOUBLE_EQ(e.stamp, s.last_sample());
}

TEST_F(SensorEnv, IndexIsExportedAsAGauge) {
  host.cpu().set_external_jobs(3);
  LoadSensor s(host, metrics);
  const obs::Gauge* g = metrics.find_gauge("load.index.host1");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value(), 3.0);
}

TEST_F(SensorEnv, DestructorUnhooksTheCpuObserver) {
  {
    LoadSensor s(host, metrics);
    host.cpu().set_external_jobs(1);
  }
  // With the sensor gone, a runnable-set change must not touch freed state.
  host.cpu().set_external_jobs(7);
  EXPECT_DOUBLE_EQ(host.cpu().load(), 7.0);
}

}  // namespace
}  // namespace cpe::load
