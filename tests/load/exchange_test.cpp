#include "load/exchange.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "support/pvm_fixture.hpp"

namespace cpe::load {
namespace {

using test::WorknetFixture;

TEST_F(WorknetFixture, GossipBuildsAFullMapOnASmallWorknet) {
  host1.cpu().set_external_jobs(4);
  LoadExchange x(vm);
  x.start(20.0);
  eng.run_until(20.0);
  // Three hosts, fanout 2: everyone hears about everyone within a few
  // rounds.
  for (const os::Host* at : {&host1, &host2, &sparc}) {
    const std::vector<LoadEntry> v = x.view(*at);
    ASSERT_EQ(v.size(), 3u) << "partial map at " << at->name();
  }
  EXPECT_GT(x.rounds(), 0u);
  EXPECT_GT(x.entries_merged(), 0u);
  // host2's map has host1's load (gossiped, not polled).
  const LoadEntry* e = x.entry_at(host2, "host1");
  ASSERT_NE(e, nullptr);
  EXPECT_GT(e->index, 2.0);  // EWMA converging toward 4
  EXPECT_TRUE(e->owner_active);
}

TEST_F(WorknetFixture, OwnEntryIsAlwaysLiveInTheView) {
  LoadExchange x(vm);
  host1.cpu().set_external_jobs(6);  // no gossip has run yet
  for (const LoadEntry& e : x.view(host1)) {
    if (e.host == "host1") {
      EXPECT_DOUBLE_EQ(e.instant, 6.0);
    }
  }
}

TEST_F(WorknetFixture, EntriesCarryTheOriginStampNotTheArrivalTime) {
  host1.cpu().set_external_jobs(2);
  LoadExchange x(vm);
  x.start(10.0);
  eng.run_until(10.0);
  const LoadEntry* e = x.entry_at(host2, "host1");
  ASSERT_NE(e, nullptr);
  EXPECT_LE(e->stamp, eng.now());
  EXPECT_GE(e->stamp, 0.0);
}

TEST_F(WorknetFixture, CrashedHostEntriesAgeOutOfTheMaps) {
  ExchangePolicy p;
  p.staleness_bound = 2.0;
  LoadExchange x(vm, p);
  x.start(40.0);
  auto driver = [](sim::Engine* e, os::Host* victim) -> sim::Co<void> {
    co_await sim::Delay(*e, 5.0);
    victim->crash();
  };
  sim::spawn(eng, driver(&eng, &sparc));
  eng.run_until(40.0);
  // sparc stopped refreshing at t=5; by t=40 its last entry is far past
  // 3x the staleness bound and must have been garbage-collected.
  EXPECT_EQ(x.entry_at(host1, "sparc1"), nullptr);
  EXPECT_EQ(x.entry_at(host2, "sparc1"), nullptr);
}

TEST_F(WorknetFixture, CrashedHostNeitherSendsNorWedgesTheExchange) {
  LoadExchange x(vm);
  x.start(20.0);
  auto driver = [](sim::Engine* e, os::Host* victim) -> sim::Co<void> {
    co_await sim::Delay(*e, 2.0);
    victim->crash();
  };
  sim::spawn(eng, driver(&eng, &host2));
  eng.run_until(20.0);  // must not throw DeliveryError out of the loops
  // The survivors still gossip to each other.
  EXPECT_NE(x.entry_at(host1, "sparc1"), nullptr);
  EXPECT_NE(x.entry_at(sparc, "host1"), nullptr);
}

TEST_F(WorknetFixture, GossipUsesUnreliableDatagrams) {
  LoadExchange x(vm);
  x.start(10.0);
  eng.run_until(10.0);
  EXPECT_GT(net.datagrams().unreliable_sent(), 0u);
  EXPECT_GT(vm.metrics().counter("load.gossip.sent").value(), 0u);
}

TEST(GossipAdversary, DuplicatedGossipMergesExactlyOnce) {
  // Freshest-wins merging is the gossip layer's dedup: an echoed datagram
  // carries entries with the stamps the first copy already delivered, so
  // the replay merges nothing.  A run on a duplicating fabric must
  // converge to the same maps — and the same merge count — as a clean one.
  auto run_once = [](bool duplicated) {
    sim::Engine e;
    net::Network n(e);
    os::Host a(e, n, os::HostConfig("a", "HPPA", 1.0));
    os::Host b(e, n, os::HostConfig("b", "HPPA", 1.0));
    os::Host c(e, n, os::HostConfig("c", "HPPA", 1.0));
    pvm::PvmSystem v(e, n);
    v.add_host(a);
    v.add_host(b);
    v.add_host(c);
    if (duplicated) n.set_adversary({.duplicate_probability = 1.0});
    LoadExchange x(v);
    x.start(20.0);
    e.run_until(20.0);
    std::size_t full_maps = 0;
    for (const os::Host* at : {&a, &b, &c})
      if (x.view(*at).size() == 3u) ++full_maps;
    return std::tuple{full_maps, x.entries_merged(),
                      n.datagrams().duplicates_injected()};
  };
  const auto [clean_maps, clean_merged, clean_dups] = run_once(false);
  const auto [adv_maps, adv_merged, adv_dups] = run_once(true);
  EXPECT_EQ(clean_maps, 3u);
  EXPECT_EQ(adv_maps, 3u);
  EXPECT_EQ(clean_dups, 0u);
  EXPECT_GT(adv_dups, 0u);
  // Every echoed entry was skipped by the stamp check: not one extra merge.
  EXPECT_EQ(adv_merged, clean_merged);
}

TEST_F(WorknetFixture, SensorAccessorsFindEveryDaemonHost) {
  LoadExchange x(vm);
  EXPECT_NE(x.sensor_on(host1), nullptr);
  EXPECT_NE(x.sensor_on(host2), nullptr);
  EXPECT_NE(x.sensor_on(sparc), nullptr);
  os::Host outsider(eng, net, os::HostConfig("outsider", "HPPA", 1.0));
  EXPECT_EQ(x.sensor_on(outsider), nullptr);
}

}  // namespace
}  // namespace cpe::load
