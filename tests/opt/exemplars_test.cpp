#include "apps/opt/exemplars.hpp"

#include <gtest/gtest.h>

namespace cpe::opt {
namespace {

TEST(ExemplarSet, SynthesizeSizes) {
  sim::Rng rng(1);
  ExemplarSet s = ExemplarSet::synthesize(100, rng);
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(s.bytes(), 100u * 260);
  EXPECT_EQ(s.features(0).size(), 64u);
}

TEST(ExemplarSet, SynthesizeBytesRoundsDown) {
  sim::Rng rng(1);
  ExemplarSet s = ExemplarSet::synthesize_bytes(600'000, rng);
  EXPECT_EQ(s.size(), 600'000u / 260);
}

TEST(ExemplarSet, CategoriesInRange) {
  sim::Rng rng(2);
  ExemplarSet s = ExemplarSet::synthesize(1000, rng);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_GE(s.category(i), 0);
    EXPECT_LT(s.category(i), kClasses);
  }
}

TEST(ExemplarSet, WireRoundTrip) {
  sim::Rng rng(3);
  ExemplarSet s = ExemplarSet::synthesize(50, rng);
  ExemplarSet back = ExemplarSet::from_wire(s.to_wire());
  EXPECT_EQ(back.size(), s.size());
  EXPECT_EQ(back.checksum(), s.checksum());
}

TEST(ExemplarSet, ChecksumIsOrderInsensitive) {
  sim::Rng rng(4);
  ExemplarSet s = ExemplarSet::synthesize(40, rng);
  const std::uint64_t before = s.checksum();
  ExemplarSet tail = s.take_back(15);
  // Reassemble in a different order.
  ExemplarSet reordered = std::move(tail);
  reordered.append(s);
  EXPECT_EQ(reordered.checksum(), before);
}

TEST(ExemplarSet, ChecksumDetectsLoss) {
  sim::Rng rng(5);
  ExemplarSet s = ExemplarSet::synthesize(40, rng);
  const std::uint64_t before = s.checksum();
  (void)s.take_back(1);
  EXPECT_NE(s.checksum(), before);
}

TEST(ExemplarSet, TakeBackMovesFlags) {
  sim::Rng rng(6);
  ExemplarSet s = ExemplarSet::synthesize(10, rng);
  s.mark_processed(9);
  s.mark_processed(8);
  ExemplarSet tail = s.take_back(3);  // indices 7, 8, 9
  EXPECT_FALSE(tail.processed(0));
  EXPECT_TRUE(tail.processed(1));
  EXPECT_TRUE(tail.processed(2));
  EXPECT_EQ(s.size(), 7u);
  EXPECT_EQ(s.unprocessed_count(), 7u);
}

TEST(ExemplarSet, SplitConservesEverything) {
  sim::Rng rng(7);
  ExemplarSet s = ExemplarSet::synthesize(101, rng);
  const std::uint64_t sum_before = s.checksum();
  const std::size_t shares[] = {34, 34, 33};
  std::vector<ExemplarSet> parts = s.split(shares);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].size(), 34u);
  EXPECT_EQ(parts[2].size(), 33u);
  std::uint64_t sum_after = 0;
  for (const auto& p : parts) sum_after += p.checksum();
  EXPECT_EQ(sum_after, sum_before);  // checksums are additive
}

TEST(ExemplarSet, ProcessedFlagsLifecycle) {
  sim::Rng rng(8);
  ExemplarSet s = ExemplarSet::synthesize(5, rng);
  EXPECT_EQ(s.unprocessed_count(), 5u);
  s.mark_processed(2);
  EXPECT_EQ(s.unprocessed_count(), 4u);
  EXPECT_TRUE(s.processed(2));
  s.reset_processed();
  EXPECT_EQ(s.unprocessed_count(), 5u);
}

TEST(ExemplarSet, FlagsImageRoundTrip) {
  sim::Rng rng(9);
  ExemplarSet s = ExemplarSet::synthesize(6, rng);
  s.mark_processed(1);
  s.mark_processed(4);
  const std::vector<std::uint8_t> img = s.flags_image();
  ExemplarSet copy = ExemplarSet::from_wire(s.to_wire());
  copy.load_flags(img);
  EXPECT_TRUE(copy.processed(1));
  EXPECT_TRUE(copy.processed(4));
  EXPECT_FALSE(copy.processed(0));
  EXPECT_EQ(copy.unprocessed_count(), 4u);
}

TEST(ExemplarSet, DeterministicPerSeed) {
  sim::Rng a(42), b(42), c(43);
  EXPECT_EQ(ExemplarSet::synthesize(30, a).checksum(),
            ExemplarSet::synthesize(30, b).checksum());
  EXPECT_NE(ExemplarSet::synthesize(30, a).checksum(),
            ExemplarSet::synthesize(30, c).checksum());
}

TEST(ExemplarSet, AppendAccumulates) {
  sim::Rng rng(10);
  ExemplarSet a = ExemplarSet::synthesize(10, rng);
  ExemplarSet b = ExemplarSet::synthesize(7, rng);
  const std::uint64_t expect = a.checksum() + b.checksum();
  a.append(b);
  EXPECT_EQ(a.size(), 17u);
  EXPECT_EQ(a.checksum(), expect);
}

}  // namespace
}  // namespace cpe::opt
