// End-to-end tests of the three Opt variants, including the headline
// transparency invariants: migrations must not change what the application
// computes (DESIGN.md invariant 4) and ADM redistribution must conserve the
// exemplar multiset (invariant 6).
#include "apps/opt/opt_app.hpp"

#include <gtest/gtest.h>

#include "apps/opt/adm_opt.hpp"
#include "apps/opt/spmd_opt.hpp"
#include "mpvm/mpvm.hpp"

namespace cpe::opt {
namespace {

OptConfig small_config(bool real_math) {
  OptConfig cfg;
  cfg.data_bytes = 60'000;  // ~230 exemplars: fast real math
  cfg.nslaves = 2;
  cfg.iterations = 3;
  cfg.real_math = real_math;
  cfg.seed = 42;
  return cfg;
}

struct Env {
  sim::Engine eng;
  net::Network net{eng};
  os::Host host1{eng, net, os::HostConfig("host1", "HPPA", 1.0)};
  os::Host host2{eng, net, os::HostConfig("host2", "HPPA", 1.0)};
  pvm::PvmSystem vm{eng, net};

  Env() {
    vm.add_host(host1);
    vm.add_host(host2);
  }
};

// The hook coroutine runs alongside the application (e.g. to drive a
// migration).  NOTE: it is spawned from the std::function held by this
// frame, which outlives env.eng.run() — spawning a coroutine off a lambda
// that dies earlier would leave the frame's captures dangling.
using Hook = std::function<sim::Co<void>(Env&, PvmOpt&, mpvm::Mpvm*)>;

OptResult run_pvm(bool real_math, bool under_mpvm, Hook hook = {}) {
  Env env;
  std::optional<mpvm::Mpvm> mpvm;
  if (under_mpvm) mpvm.emplace(env.vm);
  PvmOpt app(env.vm, small_config(real_math));
  OptResult result;
  auto driver = [&]() -> sim::Proc { result = co_await app.run(); };
  sim::spawn(env.eng, driver());
  if (hook) sim::spawn(env.eng, hook(env, app, mpvm ? &*mpvm : nullptr));
  env.eng.run();
  return result;
}

TEST(PvmOpt, RunsToCompletionAndTrains) {
  OptResult r = run_pvm(/*real_math=*/true, /*under_mpvm=*/false);
  EXPECT_EQ(r.iterations_done, 3);
  EXPECT_GT(r.runtime(), 0.0);
  EXPECT_NE(r.net_checksum, 0u);
  EXPECT_NE(r.data_checksum, 0u);
}

TEST(PvmOpt, DeterministicAcrossRuns) {
  OptResult a = run_pvm(true, false);
  OptResult b = run_pvm(true, false);
  EXPECT_EQ(a.net_checksum, b.net_checksum);
  EXPECT_DOUBLE_EQ(a.runtime(), b.runtime());
}

TEST(PvmOpt, SourceCompatibleWithMpvm) {
  // §2.1: re-compilation/re-linking only.  Same programs, same result; the
  // MPVM library overhead is per-call microseconds (Table 1: "identical").
  OptResult plain = run_pvm(true, false);
  OptResult under = run_pvm(true, true);
  EXPECT_EQ(plain.net_checksum, under.net_checksum);
  EXPECT_NEAR(plain.runtime(), under.runtime(), plain.runtime() * 0.01);
  EXPECT_GT(under.runtime(), plain.runtime());  // overhead exists...
}

TEST(PvmOpt, MigrationIsComputationallyTransparent) {
  // Migrate a slave mid-run: the trained network must be bit-identical.
  OptResult quiet = run_pvm(true, true);
  OptResult migrated = run_pvm(
      true, true,
      [](Env& env, PvmOpt& app, mpvm::Mpvm* m) -> sim::Co<void> {
        while (!app.slaves_are_ready())
          co_await app.slaves_ready().wait();
        co_await sim::Delay(env.eng, 0.05);
        co_await m->migrate(app.slave_tid(0), env.host2);
      });
  EXPECT_EQ(quiet.net_checksum, migrated.net_checksum);
  EXPECT_EQ(quiet.iterations_done, migrated.iterations_done);
  // The run stretches by roughly the migration dead time.
  EXPECT_GT(migrated.runtime(), quiet.runtime());
}

TEST(PvmOpt, MigrateMasterMidRunStillTransparent) {
  OptResult quiet = run_pvm(true, true);
  OptResult migrated = run_pvm(
      true, true,
      [](Env& env, PvmOpt& app, mpvm::Mpvm* m) -> sim::Co<void> {
        while (!app.slaves_are_ready())
          co_await app.slaves_ready().wait();
        co_await sim::Delay(env.eng, 0.05);
        co_await m->migrate(app.master_tid(), env.host2);
      });
  EXPECT_EQ(quiet.net_checksum, migrated.net_checksum);
}

TEST(PvmOpt, RepeatedMigrationsStillTransparent) {
  OptResult quiet = run_pvm(true, true);
  OptResult migrated = run_pvm(
      true, true,
      [](Env& env, PvmOpt& app, mpvm::Mpvm* m) -> sim::Co<void> {
        while (!app.slaves_are_ready())
          co_await app.slaves_ready().wait();
        co_await sim::Delay(env.eng, 0.02);
        co_await m->migrate(app.slave_tid(0), env.host2);
        co_await sim::Delay(env.eng, 0.02);
        co_await m->migrate(app.slave_tid(0), env.host1);
      });
  EXPECT_EQ(quiet.net_checksum, migrated.net_checksum);
}

// ---------------------------------------------------------------------------
// SPMD_opt (UPVM)
// ---------------------------------------------------------------------------

struct SpmdEnv : Env {
  upvm::Upvm upvm{vm};
  void start() {
    sim::spawn(eng, upvm.start());
    eng.run();
  }
};

TEST(SpmdOpt, ProducesSameTrainingResultAsPvmOpt) {
  // The SPMD restructuring (§4.2) leaves the algorithm untouched: with the
  // same seed the trained network matches PVM_opt bit for bit.
  OptResult pvm_r = run_pvm(true, false);
  SpmdEnv env;
  env.start();
  SpmdOpt app(env.upvm, small_config(true));
  OptResult r;
  auto driver = [&]() -> sim::Proc {
    r = co_await app.run();
    env.upvm.shutdown();
  };
  sim::spawn(env.eng, driver());
  env.eng.run();
  EXPECT_EQ(r.net_checksum, pvm_r.net_checksum);
  EXPECT_EQ(r.iterations_done, 3);
}

TEST(SpmdOpt, UlpMigrationIsTransparent) {
  auto run_spmd = [](bool migrate) {
    SpmdEnv env;
    env.start();
    SpmdOpt app(env.upvm, small_config(true));
    OptResult r;
    auto driver = [&]() -> sim::Proc {
      r = co_await app.run();
      env.upvm.shutdown();
    };
    sim::spawn(env.eng, driver());
    // `mig` must outlive eng.run(): the detached coroutine references its
    // closure (the coroutine lifetime rule, README).
    auto mig = [&]() -> sim::Proc {
      while (!app.slaves_are_ready())
        co_await app.slaves_ready().wait();
      co_await sim::Delay(env.eng, 0.05);
      // Slave 1 == ULP 2, resident on host1: move it to host2.
      co_await env.upvm.migrate_ulp(SpmdOpt::slave_inst(1), env.host2);
    };
    if (migrate) sim::spawn(env.eng, mig());
    env.eng.run();
    return r;
  };
  OptResult quiet = run_spmd(false);
  OptResult migrated = run_spmd(true);
  EXPECT_EQ(quiet.net_checksum, migrated.net_checksum);
  EXPECT_GT(migrated.runtime(), quiet.runtime());
}

// ---------------------------------------------------------------------------
// ADMopt
// ---------------------------------------------------------------------------

AdmOptConfig small_adm(bool real_math) {
  AdmOptConfig cfg;
  cfg.opt = small_config(real_math);
  cfg.chunk_items = 16;
  return cfg;
}

TEST(AdmOpt, QuietRunMatchesPvmOptResult) {
  OptResult pvm_r = run_pvm(true, false);
  Env env;
  AdmOpt app(env.vm, small_adm(true));
  OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(env.eng, driver());
  env.eng.run();
  EXPECT_EQ(r.iterations_done, 3);
  EXPECT_EQ(r.net_checksum, pvm_r.net_checksum);
  EXPECT_EQ(app.final_data_checksum(), r.data_checksum);
  // The adaptivity overhead makes ADM slower in the quiet case (§4.3.1).
  // At this tiny scale compute is a small fraction of the run, so only the
  // sign is asserted; the Table 5 bench validates the ~23% figure at 9 MB.
  EXPECT_GT(r.runtime(), pvm_r.runtime());
}

TEST(AdmOpt, WithdrawConservesDataAndCompletes) {
  Env env;
  AdmOpt app(env.vm, small_adm(false));
  OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(env.eng, driver());
  auto gs = [&]() -> sim::Proc {
    while (!app.slaves_are_ready()) co_await app.slaves_ready().wait();
    co_await sim::Delay(env.eng, 0.3);
    app.post_event(0, adm::AdmEventKind::kWithdraw);
  };
  sim::spawn(env.eng, gs());
  env.eng.run();
  EXPECT_EQ(r.iterations_done, 3);
  // Invariant 6: nothing lost or duplicated.
  EXPECT_EQ(app.final_data_checksum(), r.data_checksum);
  ASSERT_EQ(app.redistributions().size(), 1u);
  EXPECT_EQ(app.redistributions()[0].kind, adm::AdmEventKind::kWithdraw);
  EXPECT_GT(app.redistributions()[0].migration_time(), 0.0);
  // The withdrawn slave ended inactive; slave 1 holds everything.
  EXPECT_NE(env.vm.trace().find("adm.fsm",
                                "adm_slave0: redistributing -> inactive"),
            nullptr);
}

TEST(AdmOpt, WithdrawMidEpochWithPartialProgressCompletes) {
  // Regression: a slave that (a) flushed its partial gradient at the
  // withdraw signal, (b) kept being credited for chunks until the
  // repartition arrived, and (c) then gave away *all* its exemplars, used
  // to strand those chunk contributions — the master's count-based epoch
  // accounting never reached the total and the run deadlocked.
  Env env;
  AdmOptConfig cfg;
  cfg.opt = small_config(false);
  cfg.opt.data_bytes = 1'000'000;  // long enough epochs to hit mid-epoch
  cfg.opt.iterations = 4;
  cfg.chunk_items = 64;
  AdmOpt app(env.vm, cfg);
  OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(env.eng, driver());
  auto gs = [&]() -> sim::Proc {
    while (!app.slaves_are_ready()) co_await app.slaves_ready().wait();
    co_await sim::Delay(env.eng, 0.7);  // slave0 is mid-epoch
    app.post_event(0, adm::AdmEventKind::kWithdraw);
  };
  sim::spawn(env.eng, gs());
  env.eng.run();
  EXPECT_EQ(r.iterations_done, 4);  // no deadlock: every epoch accounted
  EXPECT_EQ(app.final_data_checksum(), r.data_checksum);
  EXPECT_EQ(app.redistributions().size(), 1u);
}

TEST(AdmOpt, WithdrawThenRejoinCyclesThroughFsm) {
  Env env;
  AdmOptConfig cfg = small_adm(false);
  cfg.opt.iterations = 6;
  AdmOpt app(env.vm, cfg);
  OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(env.eng, driver());
  auto gs = [&]() -> sim::Proc {
    while (!app.slaves_are_ready()) co_await app.slaves_ready().wait();
    co_await sim::Delay(env.eng, 0.3);
    app.post_event(0, adm::AdmEventKind::kWithdraw);
    co_await sim::Delay(env.eng, 1.0);
    app.post_event(0, adm::AdmEventKind::kRejoin);
  };
  sim::spawn(env.eng, gs());
  env.eng.run();
  EXPECT_EQ(r.iterations_done, 6);
  EXPECT_EQ(app.final_data_checksum(), r.data_checksum);
  EXPECT_EQ(app.redistributions().size(), 2u);
  EXPECT_NE(env.vm.trace().find("adm.fsm",
                                "adm_slave0: inactive -> redistributing"),
            nullptr);
  EXPECT_NE(env.vm.trace().find("adm.fsm",
                                "adm_slave0: redistributing -> computing"),
            nullptr);
}

TEST(AdmOpt, MultipleSimultaneousWithdrawsHandled) {
  Env env;
  AdmOptConfig cfg = small_adm(false);
  cfg.opt.nslaves = 3;
  cfg.opt.slave_hosts = {"host1", "host2", "host2"};
  AdmOpt app(env.vm, cfg);
  OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(env.eng, driver());
  auto gs = [&]() -> sim::Proc {
    while (!app.slaves_are_ready()) co_await app.slaves_ready().wait();
    co_await sim::Delay(env.eng, 0.2);
    // Two withdraws in the same instant: both must be queued and handled.
    app.post_event(0, adm::AdmEventKind::kWithdraw);
    app.post_event(1, adm::AdmEventKind::kWithdraw);
  };
  sim::spawn(env.eng, gs());
  env.eng.run();
  EXPECT_EQ(r.iterations_done, 3);
  EXPECT_EQ(app.final_data_checksum(), r.data_checksum);
  EXPECT_EQ(app.redistributions().size(), 2u);
}

TEST(AdmOpt, WeightedPartitioningFollowsCapacities) {
  Env env;
  AdmOptConfig cfg = small_adm(false);
  cfg.partition_weights = {3.0, 1.0};
  AdmOpt app(env.vm, cfg);
  OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(env.eng, driver());
  auto gs = [&]() -> sim::Proc {
    while (!app.slaves_are_ready()) co_await app.slaves_ready().wait();
    co_await sim::Delay(env.eng, 0.2);
    app.post_event(0, adm::AdmEventKind::kRebalance);
  };
  sim::spawn(env.eng, gs());
  env.eng.run();
  EXPECT_EQ(app.final_data_checksum(), r.data_checksum);
  // After rebalancing 230 exemplars 3:1, slave0 ends with ~172.
  EXPECT_EQ(app.final_item_count(), 60'000u / 260);
}

}  // namespace
}  // namespace cpe::opt
