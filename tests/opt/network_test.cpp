#include "apps/opt/network.hpp"

#include <gtest/gtest.h>

#include "apps/opt/kernel.hpp"

namespace cpe::opt {
namespace {

TEST(Network, WeightCountMatchesLayout) {
  EXPECT_EQ(Network::weight_count(),
            64u * 32 + 32 + 32u * 16 + 16);
  Network net(1);
  EXPECT_EQ(net.weights().size(), Network::weight_count());
}

TEST(Network, ForwardProducesProbabilityDistribution) {
  Network net(1);
  std::vector<float> x(kInputDim, 0.3f);
  std::vector<float> p = net.forward(x);
  ASSERT_EQ(p.size(), static_cast<std::size_t>(kClasses));
  float sum = 0;
  for (float v : p) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(Network, GradientMatchesFiniteDifference) {
  sim::Rng rng(5);
  ExemplarSet set = ExemplarSet::synthesize(3, rng);
  Network net(7);
  std::vector<float> grad(Network::weight_count(), 0.0f);
  net.accumulate_gradient(set, grad);

  // Spot-check several weights against central differences.
  for (std::size_t wi : {0u, 100u, 2000u, 2100u,
                         static_cast<unsigned>(Network::weight_count() - 1)}) {
    const float eps = 1e-3f;
    Network plus = net, minus = net;
    plus.mutable_weights()[wi] += eps;
    minus.mutable_weights()[wi] -= eps;
    const double fd = (plus.loss_on(set) - minus.loss_on(set)) *
                      static_cast<double>(set.size()) / (2.0 * eps);
    EXPECT_NEAR(grad[wi], fd, 0.02 + 0.05 * std::abs(fd)) << "weight " << wi;
  }
}

TEST(Network, TrainingReducesLossAndLearns) {
  // End-to-end sanity: conjugate-gradient training on separable synthetic
  // clusters must beat chance by a wide margin.
  sim::Rng rng(11);
  ExemplarSet set = ExemplarSet::synthesize(400, rng);
  Network net(3);
  const double loss0 = net.loss_on(set);
  Network::CgState cg;
  std::vector<float> grad(Network::weight_count());
  for (int iter = 0; iter < 40; ++iter) {
    std::fill(grad.begin(), grad.end(), 0.0f);
    net.accumulate_gradient(set, grad);
    for (float& g : grad) g /= static_cast<float>(set.size());
    net.apply_cg_step(grad, cg, 0.5f);
  }
  EXPECT_LT(net.loss_on(set), loss0 * 0.5);
  EXPECT_GT(net.accuracy_on(set), 0.5);  // chance is 1/16
}

TEST(Network, ChecksumDetectsWeightChanges) {
  Network a(1), b(1), c(2);
  EXPECT_EQ(a.checksum(), b.checksum());
  EXPECT_NE(a.checksum(), c.checksum());
  a.mutable_weights()[0] += 1.0f;
  EXPECT_NE(a.checksum(), b.checksum());
}

TEST(Network, AdoptedWeightsRoundTrip) {
  Network a(9);
  Network b{std::vector<float>(a.weights().begin(), a.weights().end())};
  EXPECT_EQ(a.checksum(), b.checksum());
}

TEST(Kernel, RealAndModeledChargeSameWork) {
  sim::Rng rng(3);
  ExemplarSet set = ExemplarSet::synthesize(100, rng);
  Network net(1);
  std::vector<float> g1(Network::weight_count(), 0.0f);
  std::vector<float> g2(Network::weight_count(), 0.0f);
  GradientKernel real(true), modeled(false);
  const double w1 = real.partial(net, set, g1);
  const double w2 = modeled.partial(net, set, g2);
  EXPECT_DOUBLE_EQ(w1, w2);
  EXPECT_GT(w1, 0.0);
}

TEST(Kernel, HonorFlagsSkipsProcessed) {
  sim::Rng rng(3);
  ExemplarSet set = ExemplarSet::synthesize(10, rng);
  for (std::size_t i = 0; i < 4; ++i) set.mark_processed(i);
  Network net(1);
  std::vector<float> g(Network::weight_count(), 0.0f);
  GradientKernel k(false);
  const double w = k.partial(net, set, g, /*honor_flags=*/true);
  EXPECT_DOUBLE_EQ(w, 6 * k.workload().grad_seconds_per_exemplar);
}

TEST(Kernel, ChunkProcessesAtMostMaxAndMarks) {
  sim::Rng rng(3);
  ExemplarSet set = ExemplarSet::synthesize(10, rng);
  Network net(1);
  std::vector<float> g(Network::weight_count(), 0.0f);
  GradientKernel k(true);
  auto r1 = k.chunk(net, set, g, 4, 0.0);
  EXPECT_EQ(r1.items, 4u);
  EXPECT_EQ(set.unprocessed_count(), 6u);
  auto r2 = k.chunk(net, set, g, 100, 0.0);
  EXPECT_EQ(r2.items, 6u);
  EXPECT_EQ(set.unprocessed_count(), 0u);
  auto r3 = k.chunk(net, set, g, 100, 0.0);
  EXPECT_EQ(r3.items, 0u);
  EXPECT_DOUBLE_EQ(r3.work, 0.0);
}

TEST(Kernel, ChunkOverheadFactorInflatesWork) {
  sim::Rng rng(3);
  ExemplarSet a = ExemplarSet::synthesize(10, rng);
  ExemplarSet b = ExemplarSet::from_wire(a.to_wire());
  Network net(1);
  std::vector<float> g(Network::weight_count(), 0.0f);
  GradientKernel k(false);
  const double plain = k.chunk(net, a, g, 10, 0.0).work;
  const double adm = k.chunk(net, b, g, 10, 0.225).work;
  EXPECT_NEAR(adm / plain, 1.225, 1e-9);
}

TEST(Kernel, ChunkedEqualsOneShotGradient) {
  // Chunked ADM processing must produce the same gradient as one pass.
  sim::Rng rng(13);
  ExemplarSet a = ExemplarSet::synthesize(37, rng);
  ExemplarSet b = ExemplarSet::from_wire(a.to_wire());
  Network net(2);
  std::vector<float> g1(Network::weight_count(), 0.0f);
  std::vector<float> g2(Network::weight_count(), 0.0f);
  GradientKernel k(true);
  (void)k.partial(net, a, g1);
  while (b.unprocessed_count() > 0) (void)k.chunk(net, b, g2, 5, 0.0);
  for (std::size_t i = 0; i < g1.size(); ++i)
    EXPECT_NEAR(g1[i], g2[i], 1e-4f);
}

}  // namespace
}  // namespace cpe::opt
