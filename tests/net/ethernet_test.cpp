#include "net/ethernet.hpp"

#include <gtest/gtest.h>

namespace cpe::net {
namespace {

TEST(Ethernet, FrameTimeIncludesOverheadAndGap) {
  sim::Engine eng;
  Ethernet eth(eng);
  // 1500 B payload + 18 header + 8 preamble + 12 gap = 1538 B at 10 Mb/s.
  EXPECT_NEAR(eth.frame_time(1500), 1538.0 * 8 / 10e6, 1e-12);
}

TEST(Ethernet, SmallFramesPaddedToMinimum) {
  sim::Engine eng;
  Ethernet eth(eng);
  // 1 B payload is padded to 46 B -> 84 B on the wire.
  EXPECT_NEAR(eth.frame_time(1), 84.0 * 8 / 10e6, 1e-12);
  EXPECT_NEAR(eth.frame_time(1), eth.frame_time(46), 1e-15);
}

TEST(Ethernet, FrameTimeScalesWithBandwidth) {
  sim::Engine eng;
  EthernetParams p;
  p.bandwidth_bps = 100e6;
  Ethernet fast(eng, p);
  Ethernet slow(eng);
  EXPECT_NEAR(slow.frame_time(1000), 10 * fast.frame_time(1000), 1e-12);
}

TEST(Ethernet, TransmitFrameAdvancesTimeByFrameTime) {
  sim::Engine eng;
  Ethernet eth(eng);
  double done_at = -1;
  auto body = [&]() -> sim::Proc {
    co_await eth.transmit_frame(1500);
    done_at = eng.now();
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, eth.frame_time(1500));
}

TEST(Ethernet, SharedMediumSerializesContendingSenders) {
  sim::Engine eng;
  Ethernet eth(eng);
  double a_done = -1, b_done = -1;
  auto sender = [&](double* done) -> sim::Proc {
    co_await eth.transmit_frame(1500);
    *done = eng.now();
  };
  sim::spawn(eng, sender(&a_done));
  sim::spawn(eng, sender(&b_done));
  eng.run();
  const double ft = eth.frame_time(1500);
  EXPECT_DOUBLE_EQ(a_done, ft);
  EXPECT_DOUBLE_EQ(b_done, 2 * ft);  // queued behind the first sender
}

TEST(Ethernet, TenMegabitBulkRateIsAboutOnePointTwoMBps) {
  sim::Engine eng;
  Ethernet eth(eng);
  const std::size_t bytes = 1'000'000;
  double done_at = -1;
  auto body = [&]() -> sim::Proc {
    std::size_t remaining = bytes;
    while (remaining > 0) {
      const std::size_t chunk = std::min<std::size_t>(1500, remaining);
      co_await eth.transmit_frame(chunk);
      remaining -= chunk;
    }
    done_at = eng.now();
  };
  sim::spawn(eng, body());
  eng.run();
  const double rate = static_cast<double>(bytes) / done_at;  // B/s
  EXPECT_GT(rate, 1.15e6);
  EXPECT_LT(rate, 1.25e6);  // 10 Mb/s line rate = 1.25 MB/s
}

TEST(Ethernet, FramesForRoundsUp) {
  sim::Engine eng;
  Ethernet eth(eng);
  EXPECT_EQ(eth.frames_for(0), 1u);
  EXPECT_EQ(eth.frames_for(1), 1u);
  EXPECT_EQ(eth.frames_for(1500), 1u);
  EXPECT_EQ(eth.frames_for(1501), 2u);
  EXPECT_EQ(eth.frames_for(15000), 10u);
}

TEST(Ethernet, StatsAccumulate) {
  sim::Engine eng;
  Ethernet eth(eng);
  auto body = [&]() -> sim::Proc {
    co_await eth.transmit_frame(100);
    co_await eth.transmit_frame(200);
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_EQ(eth.total_frames(), 2u);
  EXPECT_EQ(eth.total_payload_bytes(), 300u);
}

TEST(Ethernet, IdealTransferTimeMatchesManualLoop) {
  sim::Engine eng;
  Ethernet eth(eng);
  const std::size_t bytes = 4200;
  double done_at = -1;
  auto body = [&]() -> sim::Proc {
    std::size_t remaining = bytes;
    while (remaining > 0) {
      const std::size_t chunk = std::min<std::size_t>(1500, remaining);
      co_await eth.transmit_frame(chunk);
      remaining -= chunk;
    }
    done_at = eng.now();
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_NEAR(done_at, eth.ideal_transfer_time(bytes), 1e-12);
}

TEST(Ethernet, RejectsOversizedFrame) {
  sim::Engine eng;
  Ethernet eth(eng);
  EXPECT_THROW((void)eth.frame_time(1501), ContractError);
}

}  // namespace
}  // namespace cpe::net
