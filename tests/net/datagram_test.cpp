#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace cpe::net {
namespace {

struct DatagramFixture : ::testing::Test {
  sim::Engine eng;
  Network net{eng};
  NodeId h1 = net.add_node("host1");
  NodeId h2 = net.add_node("host2");
};

TEST_F(DatagramFixture, DeliversPayloadToBoundHandler) {
  std::string got;
  net.datagrams().bind(h2, 7, [&](Datagram d) {
    got = std::any_cast<std::string>(d.payload);
  });
  auto body = [&]() -> sim::Proc {
    co_await net.datagrams().send(
        Datagram{h1, h2, 7, 100, std::string("hello")});
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_EQ(got, "hello");
}

TEST_F(DatagramFixture, ThrowsWithoutHandler) {
  auto body = [&]() -> sim::Proc {
    co_await net.datagrams().send(Datagram{h1, h2, 9, 10, {}});
  };
  sim::spawn(eng, body());
  EXPECT_THROW(eng.run(), Error);
}

TEST_F(DatagramFixture, UnbindRemovesHandler) {
  net.datagrams().bind(h2, 7, [](Datagram) {});
  net.datagrams().unbind(h2, 7);
  auto body = [&]() -> sim::Proc {
    co_await net.datagrams().send(Datagram{h1, h2, 7, 10, {}});
  };
  sim::spawn(eng, body());
  EXPECT_THROW(eng.run(), Error);
}

TEST_F(DatagramFixture, RebindReplacesHandler) {
  int first = 0, second = 0;
  net.datagrams().bind(h2, 7, [&](Datagram) { ++first; });
  net.datagrams().bind(h2, 7, [&](Datagram) { ++second; });
  auto body = [&]() -> sim::Proc {
    co_await net.datagrams().send(Datagram{h1, h2, 7, 10, {}});
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST_F(DatagramFixture, LargeMessageFragmentsOnTheWire) {
  net.datagrams().bind(h2, 7, [](Datagram) {});
  auto body = [&]() -> sim::Proc {
    co_await net.datagrams().send(Datagram{h1, h2, 7, 100'000, {}});
  };
  sim::spawn(eng, body());
  eng.run();
  // 100 kB / 4 kB fragments = 25 fragments, each ~3 data frames + 1 ack.
  EXPECT_GT(net.ethernet().total_frames(), 80u);
}

TEST_F(DatagramFixture, DaemonRouteSlowerThanRawWire) {
  net.datagrams().bind(h2, 7, [](Datagram) {});
  double done_at = -1;
  auto body = [&]() -> sim::Proc {
    co_await net.datagrams().send(Datagram{h1, h2, 7, 1'000'000, {}});
    done_at = eng.now();
  };
  sim::spawn(eng, body());
  eng.run();
  const double goodput = 1'000'000 / done_at;  // B/s
  // Slower than TCP (~1.12 MB/s) because of per-fragment stop-and-wait.
  EXPECT_LT(goodput, 1.05e6);
  EXPECT_GT(goodput, 0.6e6);
}

TEST_F(DatagramFixture, LocalDeliveryBypassesMedium) {
  bool got = false;
  net.datagrams().bind(h1, 7, [&](Datagram) { got = true; });
  auto body = [&]() -> sim::Proc {
    co_await net.datagrams().send(Datagram{h1, h1, 7, 50'000, {}});
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(net.ethernet().total_frames(), 0u);
}

TEST_F(DatagramFixture, OrderPreservedBetweenPair) {
  std::vector<int> got;
  net.datagrams().bind(h2, 7, [&](Datagram d) {
    got.push_back(std::any_cast<int>(d.payload));
  });
  auto body = [&]() -> sim::Proc {
    for (int i = 0; i < 5; ++i)
      co_await net.datagrams().send(Datagram{h1, h2, 7, 5000, i});
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(DatagramFixture, SurvivesLossyNetworkViaRetransmission) {
  int delivered = 0;
  net.datagrams().bind(h2, 7, [&](Datagram) { ++delivered; });
  net.datagrams().set_loss_probability(0.3);
  auto body = [&]() -> sim::Proc {
    for (int i = 0; i < 10; ++i)
      co_await net.datagrams().send(Datagram{h1, h2, 7, 20'000, {}});
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_EQ(delivered, 10);
  EXPECT_GT(net.datagrams().fragments_retransmitted(), 0u);
}

TEST_F(DatagramFixture, GivesUpAfterMaxRetries) {
  net.datagrams().bind(h2, 7, [](Datagram) {});
  net.datagrams().set_loss_probability(1.0);  // black hole
  auto body = [&]() -> sim::Proc {
    co_await net.datagrams().send(Datagram{h1, h2, 7, 100, {}});
  };
  sim::spawn(eng, body());
  EXPECT_THROW(eng.run(), Error);
}

TEST_F(DatagramFixture, LossyDeliveryIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    sim::Engine eng2;
    Network net2(eng2, EthernetParams{}, DatagramParams{}, seed);
    NodeId a = net2.add_node("a");
    NodeId b = net2.add_node("b");
    net2.datagrams().bind(b, 7, [](Datagram) {});
    net2.datagrams().set_loss_probability(0.2);
    auto body = [&]() -> sim::Proc {
      co_await net2.datagrams().send(Datagram{a, b, 7, 100'000, {}});
    };
    sim::spawn(eng2, body());
    eng2.run();
    return eng2.now();
  };
  EXPECT_DOUBLE_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

TEST_F(DatagramFixture, DetachedReceiverExhaustsRetriesWithTypedError) {
  net.datagrams().bind(h2, 7, [](Datagram) {});
  net.ethernet().set_attached(h2, false);
  std::optional<DeliveryError> caught;
  auto body = [&]() -> sim::Proc {
    try {
      co_await net.datagrams().send(Datagram{h1, h2, 7, 10'000, {}});
    } catch (const DeliveryError& e) {
      caught = e;
    }
  };
  sim::spawn(eng, body());
  eng.run();
  ASSERT_TRUE(caught.has_value());
  EXPECT_EQ(caught->dst(), h2);
  EXPECT_EQ(caught->fragment(), 0u);
  // Every attempt beyond the first was counted as a retransmission.
  EXPECT_EQ(net.datagrams().fragments_retransmitted(),
            static_cast<std::uint64_t>(net.datagrams().params().max_retries) +
                1);
}

TEST_F(DatagramFixture, DeliveryErrorReportsTheFailingFragment) {
  // Receiver detaches mid-message: fragment 0 is delivered, a later one
  // exhausts its retries and the error names it.
  net.datagrams().bind(h2, 7, [](Datagram) {});
  eng.schedule_at(0.05, [&] { net.ethernet().set_attached(h2, false); });
  std::optional<DeliveryError> caught;
  auto body = [&]() -> sim::Proc {
    try {
      co_await net.datagrams().send(Datagram{h1, h2, 7, 200'000, {}});
    } catch (const DeliveryError& e) {
      caught = e;
    }
  };
  sim::spawn(eng, body());
  eng.run();
  ASSERT_TRUE(caught.has_value());
  EXPECT_GT(caught->fragment(), 0u);
}

TEST_F(DatagramFixture, DetachedSenderFailsFast) {
  net.datagrams().bind(h2, 7, [](Datagram) {});
  net.ethernet().set_attached(h1, false);
  bool threw = false;
  auto body = [&]() -> sim::Proc {
    try {
      co_await net.datagrams().send(Datagram{h1, h2, 7, 100, {}});
    } catch (const DeliveryError&) {
      threw = true;
    }
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_TRUE(threw);
}

TEST_F(DatagramFixture, ShortOutageIsRiddenOutByRetransmission) {
  // A transient freeze shorter than the retry budget: the message arrives.
  net.datagrams().bind(h2, 7, [](Datagram) {});
  net.ethernet().set_attached(h2, false);
  eng.schedule_at(0.3, [&] { net.ethernet().set_attached(h2, true); });
  bool delivered = false;
  auto body = [&]() -> sim::Proc {
    co_await net.datagrams().send(Datagram{h1, h2, 7, 1'000, {}});
    delivered = true;
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_TRUE(delivered);
  EXPECT_GT(net.datagrams().fragments_retransmitted(), 0u);
}

TEST_F(DatagramFixture, PerDestinationCountersTrackDropsAndFailures) {
  // The GS blacklist notes surface these counters; they must attribute
  // trouble to the destination that caused it and to no one else.
  net.datagrams().bind(h2, 7, [](Datagram) {});
  net.ethernet().set_attached(h2, false);
  bool threw = false;
  auto body = [&]() -> sim::Proc {
    try {
      co_await net.datagrams().send(Datagram{h1, h2, 7, 1'000, {}});
    } catch (const DeliveryError&) {
      threw = true;
    }
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_TRUE(threw);
  // Every attempt on the dead destination was a drop; the exhausted send is
  // one delivery error.  The healthy node's ledger stays clean.
  EXPECT_GT(net.datagrams().drops_to(h2), 0u);
  EXPECT_EQ(net.datagrams().delivery_errors_to(h2), 1u);
  EXPECT_EQ(net.datagrams().drops_to(h1), 0u);
  EXPECT_EQ(net.datagrams().delivery_errors_to(h1), 0u);
}

TEST_F(DatagramFixture, PartitionBlocksTrafficUntilHealed) {
  net.datagrams().bind(h2, 7, [](Datagram) {});
  net.ethernet().set_partition_group(h2, 1);
  EXPECT_FALSE(net.ethernet().reachable(h1, h2));
  EXPECT_TRUE(net.ethernet().reachable(h1, h1));  // self always reachable
  bool threw = false;
  int delivered = 0;
  auto cut_off = [&]() -> sim::Proc {
    try {
      co_await net.datagrams().send(Datagram{h1, h2, 7, 1'000, {}});
    } catch (const DeliveryError&) {
      threw = true;
    }
  };
  sim::spawn(eng, cut_off());
  eng.run();
  EXPECT_TRUE(threw);
  EXPECT_GT(net.datagrams().drops_to(h2), 0u);
  // Heal: group 0 restores full connectivity and traffic flows again.
  net.ethernet().set_partition_group(h2, 0);
  EXPECT_TRUE(net.ethernet().reachable(h1, h2));
  net.datagrams().bind(h2, 7, [&](Datagram) { ++delivered; });
  auto healed = [&]() -> sim::Proc {
    co_await net.datagrams().send(Datagram{h1, h2, 7, 1'000, {}});
  };
  sim::spawn(eng, healed());
  eng.run();
  EXPECT_EQ(delivered, 1);
}

TEST_F(DatagramFixture, SameIslandStillCommunicatesDuringPartition) {
  // A partition cuts islands apart but traffic *within* each island flows.
  const NodeId h3 = net.add_node("host3");
  net.ethernet().set_partition_group(h2, 1);
  net.ethernet().set_partition_group(h3, 1);
  EXPECT_TRUE(net.ethernet().reachable(h2, h3));
  EXPECT_FALSE(net.ethernet().reachable(h1, h3));
  int delivered = 0;
  net.datagrams().bind(h3, 7, [&](Datagram) { ++delivered; });
  auto body = [&]() -> sim::Proc {
    co_await net.datagrams().send(Datagram{h2, h3, 7, 1'000, {}});
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace cpe::net
