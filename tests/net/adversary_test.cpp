// Adversarial-network injection (DESIGN.md §7): duplication, bounded
// reordering, burst delay, and payload corruption at the datagram and TCP
// transports, with per-axis counters proving the chaos actually fired.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "net/network.hpp"
#include "net/tcp.hpp"

namespace cpe::net {
namespace {

struct AdversaryFixture : ::testing::Test {
  sim::Engine eng;
  Network net{eng, EthernetParams{}, DatagramParams{}, /*seed=*/42};
  NodeId h1 = net.add_node("host1");
  NodeId h2 = net.add_node("host2");

  int delivered = 0;

  void bind_counter() {
    net.datagrams().bind(h2, 7, [&](Datagram) { ++delivered; });
  }
  void send_n(int n, std::size_t bytes = 2'000) {
    auto body = [](AdversaryFixture* self, int count,
                   std::size_t sz) -> sim::Proc {
      for (int i = 0; i < count; ++i)
        co_await self->net.datagrams().send(
            Datagram{self->h1, self->h2, 7, sz, i});
    };
    sim::spawn(eng, body(this, n, bytes));
    eng.run();
  }
};

TEST_F(AdversaryFixture, DuplicationDeliversExtrasAndCounts) {
  bind_counter();
  net.set_adversary({.duplicate_probability = 0.5});
  send_n(40);
  EXPECT_GT(net.datagrams().duplicates_injected(), 0u);
  EXPECT_EQ(net.datagrams().duplicates_to(h2),
            net.datagrams().duplicates_injected());
  EXPECT_EQ(net.datagrams().duplicates_to(h1), 0u);
  // Every original arrives plus one per injected duplicate.
  EXPECT_EQ(static_cast<std::uint64_t>(delivered),
            40u + net.datagrams().duplicates_injected());
}

TEST_F(AdversaryFixture, ReorderingHoldsDeliveriesWithinHorizon) {
  std::vector<int> got;
  net.datagrams().bind(h2, 7, [&](Datagram d) {
    got.push_back(std::any_cast<int>(d.payload));
  });
  net.set_adversary(
      {.reorder_probability = 0.5, .reorder_horizon = 0.5});
  auto body = [](AdversaryFixture* self) -> sim::Proc {
    for (int i = 0; i < 30; ++i)
      co_await self->net.datagrams().send(
          Datagram{self->h1, self->h2, 7, 1'000, i});
  };
  sim::spawn(eng, body(this));
  eng.run();
  ASSERT_EQ(got.size(), 30u);
  EXPECT_GT(net.datagrams().reorders_injected(), 0u);
  // The whole point: arrival order differs from send order...
  EXPECT_FALSE(std::is_sorted(got.begin(), got.end()));
  // ...but nothing is lost or duplicated.
  std::vector<int> sorted = got;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 30; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST_F(AdversaryFixture, BurstDelaySlowsDeliveryAndCounts) {
  bind_counter();
  double clean_done = 0, burst_done = 0;
  send_n(20);
  clean_done = eng.now();
  EXPECT_EQ(net.datagrams().bursts_injected(), 0u);

  sim::Engine eng2;
  Network net2(eng2, EthernetParams{}, DatagramParams{}, 42);
  const NodeId a = net2.add_node("a");
  const NodeId b = net2.add_node("b");
  net2.set_adversary({.burst_probability = 0.3, .burst_delay = 0.05});
  net2.datagrams().bind(b, 7, [](Datagram) {});
  auto body = [](Network* n, sim::Engine* e, NodeId src,
                 NodeId dst) -> sim::Proc {
    for (int i = 0; i < 20; ++i)
      co_await n->datagrams().send(Datagram{src, dst, 7, 2'000, i});
    (void)e;
  };
  sim::spawn(eng2, body(&net2, &eng2, a, b));
  eng2.run();
  burst_done = eng2.now();
  EXPECT_GT(net2.datagrams().bursts_injected(), 0u);
  EXPECT_GT(burst_done, clean_done);
}

TEST_F(AdversaryFixture, CorruptionWithoutHookIsDetectedAndRetransmitted) {
  // No corrupt hook installed: every flip is caught by the transport
  // checksum and recovered exactly like a loss.
  bind_counter();
  net.set_adversary({.corrupt_probability = 0.2});
  send_n(30);
  EXPECT_EQ(delivered, 30);
  EXPECT_GT(net.datagrams().corrupt_injected(), 0u);
  EXPECT_EQ(net.datagrams().corrupt_dropped(),
            net.datagrams().corrupt_injected());
  EXPECT_EQ(net.datagrams().corrupt_delivered(), 0u);
  EXPECT_EQ(net.datagrams().corrupt_to(h2),
            net.datagrams().corrupt_injected());
  EXPECT_GT(net.datagrams().fragments_retransmitted(), 0u);
}

TEST_F(AdversaryFixture, UndetectedCorruptionDeliversGarbledPayload) {
  // A hook that garbles the payload and reports "not detected" models a
  // checksumless receiver: the garbage is delivered and acked.
  int garbled_seen = 0;
  net.datagrams().bind(h2, 7, [&](Datagram d) {
    ++delivered;
    if (std::any_cast<int>(d.payload) == -1) ++garbled_seen;
  });
  net.datagrams().set_corrupt_hook([](std::any& payload) {
    payload = -1;
    return false;
  });
  net.set_adversary({.corrupt_probability = 0.2});
  send_n(30);
  EXPECT_EQ(delivered, 30);  // nothing lost: corrupt frames still arrive
  EXPECT_GT(net.datagrams().corrupt_delivered(), 0u);
  EXPECT_EQ(net.datagrams().corrupt_dropped(), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(garbled_seen),
            net.datagrams().corrupt_delivered());
}

TEST_F(AdversaryFixture, DetectingHookTriggersRetransmissionOfOriginal) {
  // A hook that reports "detected" must leave the delivered payloads
  // pristine: retransmissions resend the original, not the garbled copy.
  std::vector<int> got;
  net.datagrams().bind(h2, 7, [&](Datagram d) {
    got.push_back(std::any_cast<int>(d.payload));
  });
  net.datagrams().set_corrupt_hook([](std::any& payload) {
    payload = -1;
    return true;
  });
  net.set_adversary({.corrupt_probability = 0.2});
  auto body = [](AdversaryFixture* self) -> sim::Proc {
    for (int i = 0; i < 30; ++i)
      co_await self->net.datagrams().send(
          Datagram{self->h1, self->h2, 7, 1'000, i});
  };
  sim::spawn(eng, body(this));
  eng.run();
  EXPECT_EQ(got, ([] {
              std::vector<int> want;
              for (int i = 0; i < 30; ++i) want.push_back(i);
              return want;
            })());
  EXPECT_GT(net.datagrams().corrupt_dropped(), 0u);
}

TEST_F(AdversaryFixture, UnreliableSendLosesCorruptDatagramsOutright) {
  int got = 0;
  net.datagrams().bind(h2, 7, [&](Datagram) { ++got; });
  net.set_adversary({.corrupt_probability = 0.3});
  auto body = [](AdversaryFixture* self) -> sim::Proc {
    for (int i = 0; i < 40; ++i)
      co_await self->net.datagrams().send_unreliable(
          Datagram{self->h1, self->h2, 7, 500, i});
  };
  sim::spawn(eng, body(this));
  eng.run();
  // No retransmission on the gossip path: corrupt datagrams are gone.
  EXPECT_GT(net.datagrams().corrupt_dropped(), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(got),
            40u - net.datagrams().corrupt_dropped());
  EXPECT_GT(net.datagrams().drops_to(h2), 0u);
}

TEST_F(AdversaryFixture, DuplicateOutlivingUnbindIsACountedDrop) {
  // A jittered duplicate can arrive after the receiver unbinds; that must
  // be a counted drop, not a crash.
  net.datagrams().bind(h2, 7, [&](Datagram) {
    ++delivered;
    eng.schedule_in(0, [&] { net.datagrams().unbind(h2, 7); });
  });
  net.set_adversary(
      {.duplicate_probability = 1.0, .reorder_horizon = 1.0});
  send_n(1);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.datagrams().duplicates_injected(), 1u);
  EXPECT_GT(net.datagrams().drops_to(h2), 0u);
}

TEST_F(AdversaryFixture, InjectionIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    sim::Engine e;
    Network n(e, EthernetParams{}, DatagramParams{}, seed);
    const NodeId a = n.add_node("a");
    const NodeId b = n.add_node("b");
    n.set_adversary({.duplicate_probability = 0.3,
                     .reorder_probability = 0.3,
                     .reorder_horizon = 0.2,
                     .corrupt_probability = 0.1});
    n.datagrams().bind(b, 7, [](Datagram) {});
    auto body = [](Network* net_, NodeId src, NodeId dst) -> sim::Proc {
      for (int i = 0; i < 25; ++i)
        co_await net_->datagrams().send(Datagram{src, dst, 7, 3'000, i});
    };
    sim::spawn(e, body(&n, a, b));
    e.run();
    return std::tuple{e.now(), n.datagrams().duplicates_injected(),
                      n.datagrams().reorders_injected(),
                      n.datagrams().corrupt_injected()};
  };
  EXPECT_EQ(run_once(11), run_once(11));
  EXPECT_NE(run_once(11), run_once(12));
}

TEST_F(AdversaryFixture, TcpCorruptionAndBurstsCostTimeButNotData) {
  const std::size_t kBytes = 400'000;
  auto run_once = [&](AdversaryParams adv) {
    sim::Engine e;
    Network n(e, EthernetParams{}, DatagramParams{}, 7);
    const NodeId a = n.add_node("a");
    const NodeId b = n.add_node("b");
    n.set_adversary(adv);
    std::size_t got = 0;
    auto body = [](Network* net_, NodeId src, NodeId dst, std::size_t sz,
                   std::size_t* out) -> sim::Proc {
      auto stream = co_await TcpStream::connect(*net_, src, dst);
      auto reader = [](std::shared_ptr<TcpStream> s, NodeId at,
                       std::size_t* o) -> sim::Proc {
        const auto d = co_await s->recv(at);
        *o = d.bytes;
      };
      sim::spawn(net_->engine(), reader(stream, dst, out));
      co_await stream->send(src, sz);
    };
    sim::spawn(e, body(&n, a, b, kBytes, &got));
    e.run();
    return std::tuple{e.now(), got, n.tcp_corrupt_segments(),
                      n.tcp_bursts()};
  };
  const auto [clean_t, clean_got, c0, b0] = run_once({});
  EXPECT_EQ(clean_got, kBytes);
  EXPECT_EQ(c0, 0u);
  EXPECT_EQ(b0, 0u);
  const auto [adv_t, adv_got, c1, b1] = run_once(
      {.corrupt_probability = 0.05, .burst_probability = 0.05,
       .burst_delay = 0.01});
  EXPECT_EQ(adv_got, kBytes);  // TCP masks everything but the latency
  EXPECT_GT(c1, 0u);
  EXPECT_GT(b1, 0u);
  EXPECT_GT(adv_t, clean_t);
}

}  // namespace
}  // namespace cpe::net
