#include "net/tcp.hpp"

#include <gtest/gtest.h>

#include <string>

namespace cpe::net {
namespace {

struct TcpFixture : ::testing::Test {
  sim::Engine eng;
  Network net{eng};
  NodeId h1 = net.add_node("host1");
  NodeId h2 = net.add_node("host2");
};

TEST_F(TcpFixture, ConnectChargesHandshake) {
  double connected_at = -1;
  auto body = [&]() -> sim::Proc {
    auto s = co_await TcpStream::connect(net, h1, h2);
    connected_at = eng.now();
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_GT(connected_at, 0.0);
  EXPECT_LT(connected_at, 0.01);  // a few small frames + processing
}

TEST_F(TcpFixture, PayloadArrivesAtPeer) {
  std::string got;
  auto body = [&]() -> sim::Proc {
    auto s = co_await TcpStream::connect(net, h1, h2);
    auto sender = [](std::shared_ptr<TcpStream> st, NodeId from)
        -> sim::Proc {
      co_await st->send(from, 1000, std::string("state-image"));
    };
    sim::spawn(eng, sender(s, h1));
    auto d = co_await s->recv(h2);
    EXPECT_EQ(d.bytes, 1000u);
    got = std::any_cast<std::string>(d.payload);
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_EQ(got, "state-image");
}

TEST_F(TcpFixture, BulkGoodputMatchesPaperRawTcp) {
  // Table 2 row 1: 0.3 MB of slave state moves in ~0.27 s raw TCP.
  double done_at = -1;
  auto body = [&]() -> sim::Proc {
    auto s = co_await TcpStream::connect(net, h1, h2);
    co_await s->send(h1, 300'000);
    done_at = eng.now();
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_NEAR(done_at, 0.27, 0.02);
}

TEST_F(TcpFixture, TwentyMegabytePaperRow) {
  // Table 2 row 6: 10.4 MB raw TCP = 10.0 s in the paper; the model's
  // steady-state efficiency puts it within ~10%.
  double done_at = -1;
  auto body = [&]() -> sim::Proc {
    auto s = co_await TcpStream::connect(net, h1, h2);
    co_await s->send(h1, 10'400'000);
    done_at = eng.now();
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_NEAR(done_at, 10.0, 1.0);
}

TEST_F(TcpFixture, TransferTimeIsLinearInSize) {
  auto timed_send = [&](std::size_t bytes) {
    sim::Engine e2;
    Network n2(e2);
    NodeId a = n2.add_node("a");
    NodeId b = n2.add_node("b");
    double done = -1;
    auto body = [&]() -> sim::Proc {
      auto s = co_await TcpStream::connect(n2, a, b);
      const double start = e2.now();
      co_await s->send(a, bytes);
      done = e2.now() - start;
    };
    sim::spawn(e2, body());
    e2.run();
    return done;
  };
  const double t1 = timed_send(1'000'000);
  const double t4 = timed_send(4'000'000);
  EXPECT_NEAR(t4 / t1, 4.0, 0.05);
}

TEST_F(TcpFixture, IdealStreamTimeTracksSimulatedTime) {
  double measured = -1;
  double predicted = -1;
  auto body = [&]() -> sim::Proc {
    auto s = co_await TcpStream::connect(net, h1, h2);
    predicted = s->ideal_stream_time(500'000);
    const double start = eng.now();
    co_await s->send(h1, 500'000);
    measured = eng.now() - start;
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_NEAR(measured, predicted, predicted * 0.01);
}

TEST_F(TcpFixture, LoopbackAvoidsTheMedium) {
  double done_at = -1;
  auto body = [&]() -> sim::Proc {
    auto s = co_await TcpStream::connect(net, h1, h1);
    co_await s->send(h1, 1'000'000);
    done_at = eng.now();
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_EQ(net.ethernet().total_frames(), 0u);
  EXPECT_LT(done_at, 0.1);  // memory-speed copy, far faster than the wire
}

TEST_F(TcpFixture, BidirectionalSends) {
  bool a_got = false, b_got = false;
  auto body = [&]() -> sim::Proc {
    auto s = co_await TcpStream::connect(net, h1, h2);
    auto peer = [&](std::shared_ptr<TcpStream> st) -> sim::Proc {
      auto d = co_await st->recv(h2);
      b_got = d.bytes == 100;
      co_await st->send(h2, 200);
    };
    sim::spawn(eng, peer(s));
    co_await s->send(h1, 100);
    auto d = co_await s->recv(h1);
    a_got = d.bytes == 200;
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_TRUE(a_got);
  EXPECT_TRUE(b_got);
}

TEST_F(TcpFixture, ZeroByteSendStillDelivers) {
  bool got = false;
  auto body = [&]() -> sim::Proc {
    auto s = co_await TcpStream::connect(net, h1, h2);
    auto sender = [](std::shared_ptr<TcpStream> st, NodeId n) -> sim::Proc {
      co_await st->send(n, 0);
    };
    sim::spawn(eng, sender(s, h1));
    auto d = co_await s->recv(h2);
    got = true;
    EXPECT_EQ(d.bytes, 0u);
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_TRUE(got);
}

}  // namespace
}  // namespace cpe::net
