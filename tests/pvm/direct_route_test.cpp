// The direct task-to-task TCP route (pvm_setopt PvmRouteDirect).
#include <gtest/gtest.h>

#include "mpvm/mpvm.hpp"
#include "support/pvm_fixture.hpp"

namespace cpe::pvm {
namespace {

using cpe::test::WorknetFixture;

struct DirectRouteTest : WorknetFixture {};

TEST_F(DirectRouteTest, DeliversPayload) {
  std::string got;
  vm.register_program("dst", [&](Task& t) -> sim::Co<void> {
    co_await t.recv(kAny, 1);
    got = t.rbuf().upk_str();
  });
  vm.register_program("src", [&](Task& t) -> sim::Co<void> {
    t.set_direct_route(true);
    t.initsend().pk_str("via direct tcp");
    co_await t.send(Tid::make(1, 1), 1);
  });
  auto body = [&]() -> sim::Proc {
    co_await vm.spawn("dst", 1, "host2");
    co_await vm.spawn("src", 1, "host1");
  };
  sim::spawn(eng, body());
  run_all();
  EXPECT_EQ(got, "via direct tcp");
}

TEST_F(DirectRouteTest, BulkTransferFasterThanDaemonRoute) {
  auto timed = [&](bool direct) {
    sim::Engine e;
    net::Network n(e);
    os::Host a(e, n, os::HostConfig("a"));
    os::Host b(e, n, os::HostConfig("b"));
    PvmSystem v(e, n);
    v.add_host(a);
    v.add_host(b);
    double delivered_at = -1;
    v.register_program("dst", [&](Task& t) -> sim::Co<void> {
      co_await t.recv(kAny, 1);
      delivered_at = e.now();
    });
    v.register_program("src", [direct](Task& t) -> sim::Co<void> {
      t.set_direct_route(direct);
      t.initsend().pk_double(std::vector<double>(125'000, 0.0));  // 1 MB
      co_await t.send(Tid::make(1, 1), 1);
    });
    auto body = [&]() -> sim::Proc {
      co_await v.spawn("dst", 1, "b");
      co_await v.spawn("src", 1, "a");
    };
    sim::spawn(e, body());
    e.run();
    return delivered_at;
  };
  const double daemon_route = timed(false);
  const double direct_route = timed(true);
  // The direct route skips per-fragment daemon turnarounds: ~1.12 MB/s vs
  // ~0.92 MB/s for a bulk megabyte.
  EXPECT_LT(direct_route, daemon_route * 0.9);
}

TEST_F(DirectRouteTest, FifoPreservedOnOneConnection) {
  std::vector<int> order;
  vm.register_program("dst", [&](Task& t) -> sim::Co<void> {
    for (int i = 0; i < 10; ++i) {
      co_await t.recv(kAny, kAny);
      order.push_back(t.rbuf().upk_int());
    }
  });
  vm.register_program("src", [&](Task& t) -> sim::Co<void> {
    t.set_direct_route(true);
    for (int i = 0; i < 10; ++i) {
      t.initsend().pk_int(i);
      co_await t.send(Tid::make(1, 1), i % 3);
    }
  });
  auto body = [&]() -> sim::Proc {
    co_await vm.spawn("dst", 1, "host2");
    co_await vm.spawn("src", 1, "host1");
  };
  sim::spawn(eng, body());
  run_all();
  std::vector<int> expect(10);
  for (int i = 0; i < 10; ++i) expect[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(order, expect);
}

TEST_F(DirectRouteTest, ReconnectsWhenReceiverMigrates) {
  mpvm::Mpvm mpvm(vm);
  std::vector<int> got;
  vm.register_program("dst", [&](Task& t) -> sim::Co<void> {
    for (int i = 0; i < 12; ++i) {
      co_await t.recv(kAny, 1);
      got.push_back(t.rbuf().upk_int());
    }
  });
  vm.register_program("src", [&](Task& t) -> sim::Co<void> {
    t.set_direct_route(true);
    for (int i = 0; i < 12; ++i) {
      t.initsend().pk_int(i);
      co_await t.send(Tid::make(0, 1), 1);
      co_await sim::Delay(eng, 1.0);
    }
  });
  auto driver = [&]() -> sim::Proc {
    auto dst = co_await vm.spawn("dst", 1, "host1");
    // Sender on the third host, so the pair stays remote after migration.
    co_await vm.spawn("src", 1, "sparc1");
    co_await sim::Delay(eng, 5.0);
    co_await mpvm.migrate(dst[0], host2);
  };
  sim::spawn(eng, driver());
  run_all();
  std::vector<int> expect(12);
  for (int i = 0; i < 12; ++i) expect[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(got, expect);
  EXPECT_NE(vm.trace().find("pvm", "reconnecting"), nullptr);
}

TEST_F(DirectRouteTest, SendToDeadTaskDropped) {
  vm.register_program("ghost", [](Task&) -> sim::Co<void> { co_return; });
  vm.register_program("src", [&](Task& t) -> sim::Co<void> {
    t.set_direct_route(true);
    co_await sim::Delay(eng, 5.0);
    t.initsend().pk_int(1);
    co_await t.send(Tid::make(1, 1), 1);
    co_await sim::Delay(eng, 2.0);
  });
  auto body = [&]() -> sim::Proc {
    co_await vm.spawn("ghost", 1, "host2");
    co_await vm.spawn("src", 1, "host1");
  };
  sim::spawn(eng, body());
  run_all();
  EXPECT_NE(vm.trace().find("pvm", "direct route: dropping"), nullptr);
}

TEST_F(DirectRouteTest, LocalSendsStillUseLocalPath) {
  // Direct routing only affects remote destinations.
  bool got = false;
  vm.register_program("pair", [&](Task& t) -> sim::Co<void> {
    if (t.tid().task_num() == 1) {
      co_await t.recv(kAny, 1);
      got = true;
    } else {
      t.set_direct_route(true);
      t.initsend().pk_int(1);
      co_await t.send(Tid::make(0, 1), 1);
    }
  });
  auto body = [&]() -> sim::Proc {
    co_await vm.spawn("pair", 2, "host1");
  };
  sim::spawn(eng, body());
  run_all();
  EXPECT_TRUE(got);
  EXPECT_EQ(net.ethernet().total_frames(), 0u);  // never touched the wire
}

}  // namespace
}  // namespace cpe::pvm
