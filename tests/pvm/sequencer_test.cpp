// End-to-end exactly-once hardening (DESIGN.md §7): the CRC-32 wire
// checksum, the per-sender sequence window in Task::accept, and both
// defenses exercised over a genuinely adversarial fabric.
#include <gtest/gtest.h>

#include <vector>

#include "pvm/system.hpp"
#include "support/pvm_fixture.hpp"

namespace cpe::pvm {
namespace {

using cpe::test::WorknetFixture;

// ---------------------------------------------------------------------------
// Buffer::crc32 / corrupt_bit unit behaviour.

TEST(BufferCrc, StableAcrossIdenticalContent) {
  Buffer a;
  a.pk_int(42);
  a.pk_str("state");
  Buffer b;
  b.pk_int(42);
  b.pk_str("state");
  EXPECT_EQ(a.crc32(), b.crc32());
}

TEST(BufferCrc, SensitiveToContentAndItemMetadata) {
  Buffer a;
  a.pk_int(42);
  Buffer b;
  b.pk_int(43);
  EXPECT_NE(a.crc32(), b.crc32());
  // Same payload bytes, different item tag: the checksum covers metadata.
  Buffer c;
  c.pk_uint(42);
  EXPECT_NE(a.crc32(), c.crc32());
}

TEST(BufferCrc, SingleBitFlipChangesTheChecksum) {
  Buffer a;
  a.pk_double(std::vector<double>(100, 1.5));
  const std::uint32_t before = a.crc32();
  a.corrupt_bit(3137);
  EXPECT_NE(a.crc32(), before);
}

TEST(BufferCrc, CorruptBitOnEmptyBufferIsANoop) {
  Buffer a;
  const std::uint32_t before = a.crc32();
  a.corrupt_bit(99);
  EXPECT_EQ(a.crc32(), before);
}

// ---------------------------------------------------------------------------
// Task::accept sequence-window unit behaviour (forged frames).

struct SequencerFixture : WorknetFixture {
  std::vector<int> got;
  Tid tid;
  Task* task = nullptr;

  /// Spawn a collector that receives `expect` tag-9 messages into `got`.
  void start_collector(int expect) {
    vm.register_program("collector", [this, expect](Task& t) -> sim::Co<void> {
      for (int i = 0; i < expect; ++i) {
        Message m = co_await t.recv(kAny, 9);
        Buffer b(*m.body);
        got.push_back(b.upk_int());
      }
    });
    auto body = [this]() -> sim::Proc {
      auto tids = co_await vm.spawn("collector", 1, "host1");
      tid = tids[0];
    };
    sim::spawn(eng, body());
    eng.run();
    task = vm.find_logical(tid);
    ASSERT_NE(task, nullptr);
  }

  /// A frame as the receiving daemon would hand it over, sequence-stamped
  /// by a (fictitious) remote sender.
  [[nodiscard]] Message forged(std::uint64_t seq, int val,
                               Tid src = Tid::make(2, 30)) const {
    auto b = std::make_shared<Buffer>();
    b->pk_int(val);
    return Message(src, tid, 9, std::move(b), seq);
  }

  [[nodiscard]] std::uint64_t ctr(const char* name) {
    return vm.metrics().counter(name).value();
  }
};

TEST_F(SequencerFixture, ReplayedSeqIsDroppedExactlyOnce) {
  start_collector(2);
  task->accept(forged(1, 10));
  task->accept(forged(1, 10));  // the fabric echoed the frame
  task->accept(forged(2, 20));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20}));
  EXPECT_EQ(ctr("pvm.seq.duplicates_dropped"), 1u);
  EXPECT_EQ(ctr("pvm.seq.gaps_skipped"), 0u);
}

TEST_F(SequencerFixture, OutOfOrderFramesHeldAndReleasedInOrder) {
  start_collector(3);
  task->accept(forged(3, 30));
  task->accept(forged(2, 20));
  EXPECT_EQ(task->held_messages(), 2u);
  task->accept(forged(1, 10));  // the straggler closes the gap
  EXPECT_EQ(task->held_messages(), 0u);
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
  EXPECT_EQ(ctr("pvm.seq.reordered_held"), 2u);
  EXPECT_EQ(ctr("pvm.seq.gaps_skipped"), 0u);
}

TEST_F(SequencerFixture, DuplicateOfAHeldFrameIsDropped) {
  start_collector(2);
  task->accept(forged(2, 20));
  task->accept(forged(2, 20));  // duplicate while parked in the window
  EXPECT_EQ(task->held_messages(), 1u);
  task->accept(forged(1, 10));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20}));
  EXPECT_EQ(ctr("pvm.seq.duplicates_dropped"), 1u);
}

TEST_F(SequencerFixture, GapTimeoutSkipsAMissingSeq) {
  start_collector(1);
  const double held_at = eng.now();
  task->accept(forged(2, 20));  // seq 1 lost forever (sender-side give-up)
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{20}));
  EXPECT_EQ(ctr("pvm.seq.gaps_skipped"), 1u);
  EXPECT_EQ(task->held_messages(), 0u);
  // Liveness costs exactly the configured gap timeout.
  EXPECT_GE(eng.now(), held_at + vm.reorder_gap_timeout());
}

TEST_F(SequencerFixture, StragglerArrivingAfterGapSkipIsDropped) {
  start_collector(1);
  task->accept(forged(2, 20));
  eng.run();  // gap timeout fires, seq 1 given up
  ASSERT_EQ(ctr("pvm.seq.gaps_skipped"), 1u);
  task->accept(forged(1, 10));  // too late: the window moved past it
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{20}));
  EXPECT_EQ(ctr("pvm.seq.duplicates_dropped"), 1u);
}

TEST_F(SequencerFixture, StragglerClosingTheGapBeforeTimeoutCancelsSkip) {
  start_collector(2);
  task->accept(forged(2, 20));
  // The straggler lands well before the gap deadline.
  eng.schedule_in(vm.reorder_gap_timeout() / 4,
                  [&] { task->accept(forged(1, 10)); });
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20}));
  EXPECT_EQ(ctr("pvm.seq.gaps_skipped"), 0u);
}

TEST_F(SequencerFixture, UnsequencedFramesBypassTheWindow) {
  // seq 0 marks daemon-forged frames (exit notifies): no dedup, no holds.
  start_collector(2);
  task->accept(forged(0, 7));
  task->accept(forged(0, 7));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{7, 7}));
  EXPECT_EQ(ctr("pvm.seq.duplicates_dropped"), 0u);
  EXPECT_EQ(ctr("pvm.seq.reordered_held"), 0u);
}

TEST_F(SequencerFixture, WindowCapOverflowAbandonsTheGapUnderPressure) {
  // An adversarial (or wedged) peer pours frames past a gap that never
  // fills.  The PvmTuning cap must bound the reorder buffer: overflow
  // abandons the gap immediately — same semantics as the gap timeout, but
  // triggered by memory pressure — and delivery resumes in order.
  PvmTuning t;
  t.reorder_window_cap = 4;
  vm.set_tuning(t);
  start_collector(6);
  for (std::uint64_t s = 2; s <= 6; ++s)
    task->accept(forged(s, static_cast<int>(s) * 10));  // seq 1 never sent
  eng.run();
  // The 5th parked frame overflowed the 4-frame window: gap given up, all
  // held frames drained in order, nothing left parked.
  EXPECT_EQ(got, (std::vector<int>{20, 30, 40, 50, 60}));
  EXPECT_EQ(ctr("pvm.seq.window_evicted"), 1u);
  EXPECT_EQ(ctr("pvm.seq.gaps_skipped"), 1u);
  EXPECT_EQ(task->held_messages(), 0u);

  // The missing frame straggling in later is dropped as a replay (exactly
  // once), and the stream keeps flowing past it.
  task->accept(forged(1, 10));
  task->accept(forged(7, 70));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{20, 30, 40, 50, 60, 70}));
  EXPECT_EQ(ctr("pvm.seq.duplicates_dropped"), 1u);
  EXPECT_EQ(ctr("pvm.seq.window_evicted"), 1u);  // no further evictions
}

TEST_F(SequencerFixture, TuningRejectsZeroWindowCap) {
  PvmTuning t;
  t.reorder_window_cap = 0;
  EXPECT_THROW(vm.set_tuning(t), ContractError);
}

TEST_F(SequencerFixture, WindowsArePerSender) {
  start_collector(2);
  task->accept(forged(1, 10, Tid::make(2, 30)));
  task->accept(forged(1, 11, Tid::make(2, 31)));  // same seq, other sender
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{10, 11}));
  EXPECT_EQ(ctr("pvm.seq.duplicates_dropped"), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end over the adversarial fabric: real tasks, real daemons.

struct AdversarialPvmFixture : WorknetFixture {
  std::vector<int> got;
  Tid receiver_tid;
  static constexpr int kMsgs = 20;

  /// Receiver on host2, sender on host1; the adversary switches on only
  /// after both are enrolled, so spawn RPCs stay on the quiet network.
  void run_chatter(net::AdversaryParams adv) {
    vm.register_program("rx", [this](Task& t) -> sim::Co<void> {
      for (int i = 0; i < kMsgs; ++i) {
        Message m = co_await t.recv(kAny, 9);
        Buffer b(*m.body);
        got.push_back(b.upk_int());
      }
    });
    vm.register_program("tx", [this](Task& t) -> sim::Co<void> {
      co_await sim::Delay(t.system().engine(), 1.0);  // adversary armed at 0.5
      for (int i = 0; i < kMsgs; ++i) {
        t.initsend().pk_int(i);
        co_await t.send(receiver_tid, 9);
      }
    });
    eng.schedule_at(0.5, [this, adv] { net.set_adversary(adv); });
    auto body = [this]() -> sim::Proc {
      auto rx = co_await vm.spawn("rx", 1, "host2");
      receiver_tid = rx[0];
      co_await vm.spawn("tx", 1, "host1");
    };
    sim::spawn(eng, body());
    run_all();
  }

  [[nodiscard]] std::uint64_t ctr(const char* name) {
    return vm.metrics().counter(name).value();
  }

  [[nodiscard]] static std::vector<int> in_order() {
    std::vector<int> v;
    for (int i = 0; i < kMsgs; ++i) v.push_back(i);
    return v;
  }
};

TEST_F(AdversarialPvmFixture, DuplicatedFramesDeliverExactlyOnce) {
  run_chatter({.duplicate_probability = 0.5});
  EXPECT_EQ(got, in_order());
  EXPECT_GT(net.datagrams().duplicates_injected(), 0u);
  EXPECT_GT(ctr("pvm.seq.duplicates_dropped"), 0u);
}

TEST_F(AdversarialPvmFixture, ReorderedFramesReleaseInSendOrder) {
  run_chatter({.reorder_probability = 0.4, .reorder_horizon = 0.05});
  EXPECT_EQ(got, in_order());
  EXPECT_GT(net.datagrams().reorders_injected(), 0u);
  EXPECT_GT(ctr("pvm.seq.reordered_held"), 0u);
  // Horizon is far below the gap timeout: every straggler arrives in time.
  EXPECT_EQ(ctr("pvm.seq.gaps_skipped"), 0u);
}

TEST_F(AdversarialPvmFixture, CorruptionIsCaughtByTheFrameChecksum) {
  // Checksums on (the default): every flipped frame is detected at the
  // receiving daemon, retransmitted, and the app sees pristine data.
  run_chatter({.corrupt_probability = 0.1});
  EXPECT_EQ(got, in_order());
  EXPECT_GT(net.datagrams().corrupt_injected(), 0u);
  EXPECT_GT(net.datagrams().corrupt_dropped(), 0u);
  EXPECT_EQ(net.datagrams().corrupt_delivered(), 0u);
}

TEST_F(AdversarialPvmFixture, WithoutChecksumsGarbageReachesTheApp) {
  // The negative control: disable the frame checksum and the same flips
  // sail through — proof the CRC is what was protecting the payload.
  vm.set_wire_checksums(false);
  run_chatter({.corrupt_probability = 0.1});
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kMsgs));
  EXPECT_GT(net.datagrams().corrupt_delivered(), 0u);
  std::size_t mismatches = 0;
  for (int i = 0; i < kMsgs; ++i)
    if (got[static_cast<std::size_t>(i)] != i) ++mismatches;
  EXPECT_EQ(mismatches, net.datagrams().corrupt_delivered());
}

TEST_F(AdversarialPvmFixture, FullAdversaryStillDeliversExactlyOnceInOrder) {
  run_chatter({.duplicate_probability = 0.3,
               .reorder_probability = 0.3,
               .reorder_horizon = 0.05,
               .corrupt_probability = 0.05});
  EXPECT_EQ(got, in_order());
  EXPECT_GT(net.datagrams().duplicates_injected(), 0u);
  EXPECT_GT(net.datagrams().reorders_injected(), 0u);
  EXPECT_GT(net.datagrams().corrupt_injected(), 0u);
  EXPECT_EQ(net.datagrams().corrupt_delivered(), 0u);
}

}  // namespace
}  // namespace cpe::pvm
