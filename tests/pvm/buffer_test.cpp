#include "pvm/buffer.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <vector>

namespace cpe::pvm {
namespace {

TEST(Buffer, ScalarRoundTrips) {
  Buffer b;
  b.pk_int(-42);
  b.pk_uint(0xdeadbeefu);
  b.pk_long(-1234567890123456789ll);
  b.pk_float(3.25f);
  b.pk_double(-2.718281828459045);
  EXPECT_EQ(b.upk_int(), -42);
  EXPECT_EQ(b.upk_uint(), 0xdeadbeefu);
  EXPECT_EQ(b.upk_long(), -1234567890123456789ll);
  EXPECT_EQ(b.upk_float(), 3.25f);
  EXPECT_EQ(b.upk_double(), -2.718281828459045);
  EXPECT_TRUE(b.exhausted());
}

TEST(Buffer, ArrayRoundTrips) {
  Buffer b;
  const std::vector<std::int32_t> ints{1, -2, 3, -4};
  const std::vector<double> doubles{0.5, -1.5, 2.5};
  b.pk_int(ints);
  b.pk_double(doubles);
  std::vector<std::int32_t> ints_out(4);
  std::vector<double> doubles_out(3);
  b.upk_int(ints_out);
  b.upk_double(doubles_out);
  EXPECT_EQ(ints_out, ints);
  EXPECT_EQ(doubles_out, doubles);
}

TEST(Buffer, ByteAndStringRoundTrips) {
  Buffer b;
  const std::array<std::byte, 5> raw{std::byte{0}, std::byte{255},
                                     std::byte{7}, std::byte{128},
                                     std::byte{1}};
  b.pk_byte(raw);
  b.pk_str("hello pvm");
  std::array<std::byte, 5> raw_out{};
  b.upk_byte(raw_out);
  EXPECT_EQ(raw_out, raw);
  EXPECT_EQ(b.upk_str(), "hello pvm");
}

TEST(Buffer, RawEncodingRoundTrips) {
  Buffer b(Encoding::kRaw);
  b.pk_double(1.0 / 3.0);
  b.pk_int(-7);
  EXPECT_EQ(b.upk_double(), 1.0 / 3.0);
  EXPECT_EQ(b.upk_int(), -7);
}

TEST(Buffer, DefaultEncodingIsBigEndianOnTheWire) {
  // XDR is big-endian; on this little-endian host the default encoding must
  // actually swap.  We verify via the byte images differing between raw and
  // default for a value with asymmetric bytes.
  Buffer raw(Encoding::kRaw);
  Buffer xdr(Encoding::kDefault);
  raw.pk_int(0x01020304);
  xdr.pk_int(0x01020304);
  // Both must round-trip regardless of wire layout.
  EXPECT_EQ(raw.upk_int(), 0x01020304);
  EXPECT_EQ(xdr.upk_int(), 0x01020304);
}

TEST(Buffer, TypeMismatchThrows) {
  Buffer b;
  b.pk_int(1);
  EXPECT_THROW((void)b.upk_double(), Error);
}

TEST(Buffer, LengthMismatchThrows) {
  Buffer b;
  b.pk_int(std::vector<std::int32_t>{1, 2, 3});
  std::vector<std::int32_t> out(2);
  EXPECT_THROW(b.upk_int(out), Error);
}

TEST(Buffer, UnpackPastEndThrows) {
  Buffer b;
  b.pk_int(1);
  EXPECT_EQ(b.upk_int(), 1);
  EXPECT_THROW((void)b.upk_int(), Error);
}

TEST(Buffer, NextCountAllowsSizingBeforeUnpack) {
  Buffer b;
  b.pk_double(std::vector<double>{1, 2, 3, 4, 5});
  EXPECT_EQ(b.next_count(), 5u);
  std::vector<double> out(b.next_count());
  b.upk_double(out);
  EXPECT_EQ(b.next_count(), 0u);
}

TEST(Buffer, RewindRestartsUnpacking) {
  Buffer b;
  b.pk_int(10);
  b.pk_int(20);
  EXPECT_EQ(b.upk_int(), 10);
  EXPECT_EQ(b.upk_int(), 20);
  b.rewind();
  EXPECT_EQ(b.upk_int(), 10);
}

TEST(Buffer, BytesTracksEncodedSize) {
  Buffer b;
  EXPECT_EQ(b.bytes(), 0u);
  b.pk_int(std::vector<std::int32_t>(10, 0));
  EXPECT_EQ(b.bytes(), Buffer::kItemHeaderBytes + 40u);
  b.pk_double(std::vector<double>(5, 0));
  EXPECT_EQ(b.bytes(), 2 * Buffer::kItemHeaderBytes + 80u);
  b.pk_str("abcd");
  // The string's XDR length word is the header's count word: 4 payload chars.
  EXPECT_EQ(b.bytes(), 3 * Buffer::kItemHeaderBytes + 84u);
}

TEST(Buffer, EveryItemChargesTheWireHeader) {
  // The wire-size identity behind the accounting fix: each packed item costs
  // exactly its payload plus one kItemHeaderBytes header, whatever its type.
  // The old code charged headers only for strings (and only half of one),
  // so a buffer of N scalar items undercounted by 8N bytes.
  Buffer b;
  std::size_t expect = 0;
  b.pk_int(7);
  expect += Buffer::kItemHeaderBytes + 4;
  EXPECT_EQ(b.bytes(), expect);
  b.pk_double(1.0);
  expect += Buffer::kItemHeaderBytes + 8;
  EXPECT_EQ(b.bytes(), expect);
  b.pk_byte(std::array<std::byte, 3>{});
  expect += Buffer::kItemHeaderBytes + 3;
  EXPECT_EQ(b.bytes(), expect);
  b.pk_str("xyz");
  expect += Buffer::kItemHeaderBytes + 3;
  EXPECT_EQ(b.bytes(), expect);
  b.pk_float(std::vector<float>(6, 0.f));
  expect += Buffer::kItemHeaderBytes + 24;
  EXPECT_EQ(b.bytes(), expect);
  // An empty item still travels: its header is the whole cost.
  b.pk_int(std::span<const std::int32_t>{});
  expect += Buffer::kItemHeaderBytes;
  EXPECT_EQ(b.bytes(), expect);
}

TEST(Buffer, EmptyBufferProperties) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.item_count(), 0u);
  EXPECT_EQ(b.next_count(), 0u);
}

TEST(Buffer, InterleavedTypesKeepOrder) {
  Buffer b;
  b.pk_int(1);
  b.pk_str("two");
  b.pk_double(3.0);
  b.pk_byte(std::array<std::byte, 1>{std::byte{4}});
  EXPECT_EQ(b.upk_int(), 1);
  EXPECT_EQ(b.upk_str(), "two");
  EXPECT_EQ(b.upk_double(), 3.0);
  std::array<std::byte, 1> out{};
  b.upk_byte(out);
  EXPECT_EQ(out[0], std::byte{4});
}

TEST(Buffer, CopyIsIndependent) {
  Buffer a;
  a.pk_int(5);
  Buffer b = a;
  EXPECT_EQ(a.upk_int(), 5);
  EXPECT_EQ(b.upk_int(), 5);  // own cursor
}

TEST(Buffer, LargeArraysRoundTrip) {
  Buffer b;
  std::vector<float> big(100'000);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<float>(i) * 0.5f;
  b.pk_float(big);
  EXPECT_EQ(b.bytes(), Buffer::kItemHeaderBytes + 400'000u);
  std::vector<float> out(big.size());
  b.upk_float(out);
  EXPECT_EQ(out, big);
}

TEST(Buffer, SpecialFloatValuesSurviveXdr) {
  Buffer b;
  b.pk_double(std::numeric_limits<double>::infinity());
  b.pk_double(-0.0);
  b.pk_double(std::numeric_limits<double>::denorm_min());
  b.pk_float(std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(b.upk_double(), std::numeric_limits<double>::infinity());
  const double neg_zero = b.upk_double();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(b.upk_double(), std::numeric_limits<double>::denorm_min());
  EXPECT_TRUE(std::isnan(b.upk_float()));
}

TEST(Buffer, EmptyStringAndEmptyArray) {
  Buffer b;
  b.pk_str("");
  b.pk_int(std::span<const std::int32_t>{});
  EXPECT_EQ(b.upk_str(), "");
  b.upk_int(std::span<std::int32_t>{});
  EXPECT_TRUE(b.exhausted());
}

}  // namespace
}  // namespace cpe::pvm
