#include <gtest/gtest.h>

#include "pvm/message.hpp"

namespace cpe::pvm {
namespace {

Message make_msg(Tid src, int tag, int payload_int = 0) {
  auto b = std::make_shared<Buffer>();
  b->pk_int(payload_int);
  return Message(src, Tid::make(9, 9), tag, std::move(b));
}

struct MailboxFixture : ::testing::Test {
  sim::Engine eng;
  Mailbox box{eng};
  Tid a = Tid::make(0, 1);
  Tid b = Tid::make(1, 1);
};

TEST_F(MailboxFixture, TryTakeExactMatch) {
  box.push(make_msg(a, 5));
  EXPECT_EQ(box.try_take(b.raw(), 5), std::nullopt);
  EXPECT_EQ(box.try_take(a.raw(), 6), std::nullopt);
  auto m = box.try_take(a.raw(), 5);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->src, a);
  EXPECT_TRUE(box.empty());
}

TEST_F(MailboxFixture, WildcardsMatchAnything) {
  box.push(make_msg(a, 5));
  EXPECT_TRUE(box.probe(kAny, kAny));
  EXPECT_TRUE(box.probe(kAny, 5));
  EXPECT_TRUE(box.probe(a.raw(), kAny));
  auto m = box.try_take(kAny, kAny);
  ASSERT_TRUE(m.has_value());
}

TEST_F(MailboxFixture, OldestMatchingWins) {
  box.push(make_msg(a, 5, 1));
  box.push(make_msg(b, 5, 2));
  box.push(make_msg(a, 5, 3));
  auto m = box.try_take(a.raw(), 5);
  ASSERT_TRUE(m.has_value());
  Buffer copy(*m->body);
  EXPECT_EQ(copy.upk_int(), 1);
  // Skips non-matching b message.
  m = box.try_take(a.raw(), 5);
  Buffer copy2(*m->body);
  EXPECT_EQ(copy2.upk_int(), 3);
  EXPECT_EQ(box.size(), 1u);
}

TEST_F(MailboxFixture, BlockingTakeWakesOnPush) {
  double got_at = -1;
  auto receiver = [&]() -> sim::Proc {
    Message m = co_await box.take(kAny, 7);
    got_at = eng.now();
    EXPECT_EQ(m.tag, 7);
  };
  sim::spawn(eng, receiver());
  eng.schedule_at(2.0, [&] { box.push(make_msg(a, 7)); });
  eng.run();
  EXPECT_DOUBLE_EQ(got_at, 2.0);
}

TEST_F(MailboxFixture, TakeIgnoresNonMatchingPushes) {
  bool got = false;
  auto receiver = [&]() -> sim::Proc {
    Message m = co_await box.take(kAny, 7);
    got = true;
    (void)m;
  };
  sim::spawn(eng, receiver());
  eng.schedule_at(1.0, [&] { box.push(make_msg(a, 6)); });
  eng.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(box.size(), 1u);  // the tag-6 message stays queued
  box.push(make_msg(a, 7));
  eng.run();
  EXPECT_TRUE(got);
}

TEST_F(MailboxFixture, TwoReceiversDifferentFiltersBothServed) {
  int got5 = 0, got6 = 0;
  auto receiver = [&](int tag, int* got) -> sim::Proc {
    Message m = co_await box.take(kAny, tag);
    *got = 1;
    (void)m;
  };
  sim::spawn(eng, receiver(5, &got5));
  sim::spawn(eng, receiver(6, &got6));
  eng.schedule_at(1.0, [&] {
    box.push(make_msg(a, 6));
    box.push(make_msg(a, 5));
  });
  eng.run();
  EXPECT_EQ(got5, 1);
  EXPECT_EQ(got6, 1);
}

TEST_F(MailboxFixture, TakeForTimesOut) {
  bool timed_out = false;
  auto receiver = [&]() -> sim::Proc {
    auto m = co_await box.take_for(kAny, 7, 3.0);
    timed_out = !m.has_value();
  };
  sim::spawn(eng, receiver());
  eng.run();
  EXPECT_TRUE(timed_out);
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
}

TEST_F(MailboxFixture, TakeForSucceedsBeforeDeadline) {
  bool got = false;
  auto receiver = [&]() -> sim::Proc {
    auto m = co_await box.take_for(kAny, 7, 3.0);
    got = m.has_value();
  };
  sim::spawn(eng, receiver());
  eng.schedule_at(1.0, [&] { box.push(make_msg(a, 7)); });
  eng.run();
  EXPECT_TRUE(got);
}

TEST_F(MailboxFixture, TakeForDeliveryAtDeadlineTickIsNotLost) {
  // Delivery and deadline land on the same virtual tick.  Whichever event
  // the engine runs first, the outcome must be coherent: either the waiter
  // gets the message, or it times out and the message stays queued — never
  // both, never neither.
  std::optional<Message> got;
  bool finished = false;
  auto receiver = [&]() -> sim::Proc {
    got = co_await box.take_for(kAny, 7, 3.0);
    finished = true;
  };
  sim::spawn(eng, receiver());
  eng.schedule_at(3.0, [&] { box.push(make_msg(a, 7)); });
  eng.run();
  ASSERT_TRUE(finished);
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
  if (got.has_value()) {
    EXPECT_TRUE(box.empty());
    EXPECT_EQ(box.total_bytes(), 0u);
  } else {
    EXPECT_EQ(box.size(), 1u);  // timed out: the message is still queued
    EXPECT_GT(box.total_bytes(), 0u);
  }
}

TEST_F(MailboxFixture, TakeForChecksQueueOnceMoreAtTimeout) {
  // A message already queued when the timeout resumption runs must be
  // taken by the final re-check, not reported as a timeout.
  box.push(make_msg(a, 6));  // non-matching: forces the waiter to park
  std::optional<Message> got;
  auto receiver = [&]() -> sim::Proc {
    got = co_await box.take_for(kAny, 7, 3.0);
  };
  sim::spawn(eng, receiver());
  // Pushed at the deadline tick; the timeout resumption re-checks the queue.
  eng.schedule_at(3.0, [&] { box.push(make_msg(a, 7)); });
  eng.run();
  if (got.has_value()) {
    EXPECT_EQ(got->tag, 7);
    EXPECT_EQ(box.size(), 1u);  // only the tag-6 message remains
  } else {
    EXPECT_EQ(box.size(), 2u);  // nothing was consumed
  }
  // Never both returned and left queued: a tag-7 message exists exactly
  // once, in the box xor in `got`.
  EXPECT_EQ((got.has_value() ? 1 : 0) + (box.probe(kAny, 7) ? 1 : 0), 1);
}

TEST_F(MailboxFixture, RefillWhileWaiterParkedInTakeFor) {
  // A migration refill (drained messages pushed back) while a take_for
  // waiter is parked must wake it like any delivery, well before timeout.
  std::optional<Message> got;
  double got_at = -1;
  auto receiver = [&]() -> sim::Proc {
    got = co_await box.take_for(kAny, 7, 10.0);
    got_at = eng.now();
  };
  sim::spawn(eng, receiver());
  eng.schedule_at(2.0, [&] {
    std::deque<Message> msgs;
    msgs.push_back(make_msg(a, 7, 99));
    box.refill(std::move(msgs));
  });
  eng.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got_at, 2.0);
  Buffer c(*got->body);
  EXPECT_EQ(c.upk_int(), 99);
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.total_bytes(), 0u);
}

TEST_F(MailboxFixture, TakeForKeepsTotalBytesConsistentOnTimeout) {
  const std::size_t per_msg = Buffer::kItemHeaderBytes + 4u;
  box.push(make_msg(a, 6));  // never matches the waiter
  bool timed_out = false;
  auto receiver = [&]() -> sim::Proc {
    auto m = co_await box.take_for(kAny, 7, 3.0);
    timed_out = !m.has_value();
  };
  sim::spawn(eng, receiver());
  eng.run();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(box.size(), 1u);
  EXPECT_EQ(box.total_bytes(), per_msg);  // the unmatched message, untouched
  EXPECT_EQ(box.waiting_receivers(), 0u);  // the waiter really left
}

TEST_F(MailboxFixture, TotalBytesTracked) {
  // One int = header + 4 payload bytes on the wire.
  const std::size_t per_msg = Buffer::kItemHeaderBytes + 4u;
  EXPECT_EQ(box.total_bytes(), 0u);
  box.push(make_msg(a, 1));
  box.push(make_msg(b, 2));
  EXPECT_EQ(box.total_bytes(), 2 * per_msg);
  (void)box.try_take(kAny, kAny);
  EXPECT_EQ(box.total_bytes(), per_msg);
}

TEST_F(MailboxFixture, DrainAndRefillPreserveOrder) {
  box.push(make_msg(a, 1, 10));
  box.push(make_msg(a, 1, 20));
  auto drained = box.drain();
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.total_bytes(), 0u);
  EXPECT_EQ(drained.size(), 2u);
  // A message delivered mid-migration lands after the drained ones refill.
  box.push(make_msg(a, 1, 30));
  box.refill(std::move(drained));
  EXPECT_EQ(box.size(), 3u);
  auto m1 = box.try_take(kAny, kAny);
  auto m2 = box.try_take(kAny, kAny);
  auto m3 = box.try_take(kAny, kAny);
  Buffer c1(*m1->body), c2(*m2->body), c3(*m3->body);
  EXPECT_EQ(c1.upk_int(), 10);
  EXPECT_EQ(c2.upk_int(), 20);
  EXPECT_EQ(c3.upk_int(), 30);
}

TEST_F(MailboxFixture, RefillWakesBlockedReceiver) {
  bool got = false;
  auto receiver = [&]() -> sim::Proc {
    Message m = co_await box.take(kAny, kAny);
    got = true;
    (void)m;
  };
  sim::spawn(eng, receiver());
  eng.run();
  EXPECT_FALSE(got);
  std::deque<Message> msgs;
  msgs.push_back(make_msg(a, 3));
  box.refill(std::move(msgs));
  eng.run();
  EXPECT_TRUE(got);
}

}  // namespace
}  // namespace cpe::pvm
