// pvm_kill and pvm_notify(TaskExit) semantics.
#include "mpvm/mpvm.hpp"
#include <gtest/gtest.h>

#include "support/pvm_fixture.hpp"

namespace cpe::pvm {
namespace {

using cpe::test::WorknetFixture;

struct LifecycleTest : WorknetFixture {};

TEST_F(LifecycleTest, KillStopsARunningTask) {
  bool completed = false;
  vm.register_program("victim", [&](Task& t) -> sim::Co<void> {
    co_await t.compute(100.0);
    completed = true;
  });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("victim", 1, "host1");
    co_await sim::Delay(eng, 5.0);
    EXPECT_TRUE(vm.kill(v[0]));
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_FALSE(completed);
  EXPECT_EQ(host1.cpu().job_count(), 0u);  // burst withdrawn
}

TEST_F(LifecycleTest, KillUnknownOrDeadReturnsFalse) {
  vm.register_program("short", [](Task&) -> sim::Co<void> { co_return; });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("short", 1);
    co_await vm.wait_exit(v[0]);
    EXPECT_FALSE(vm.kill(v[0]));                  // already exited
    EXPECT_FALSE(vm.kill(Tid::make(0, 4321)));    // never existed
  };
  sim::spawn(eng, driver());
  run_all();
}

TEST_F(LifecycleTest, KilledTaskDropsSubsequentMessages) {
  vm.register_program("victim", [&](Task& t) -> sim::Co<void> {
    co_await t.recv(kAny, 1);  // never satisfied
  });
  vm.register_program("talker", [&](Task& t) -> sim::Co<void> {
    co_await sim::Delay(eng, 10.0);
    t.initsend().pk_int(1);
    co_await t.send(Tid::make(0, 1), 1);
    co_await sim::Delay(eng, 1.0);
  });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("victim", 1, "host1");
    co_await vm.spawn("talker", 1, "host2");
    co_await sim::Delay(eng, 5.0);
    vm.kill(v[0]);
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_NE(vm.trace().find("pvmd", "dropping"), nullptr);
}

TEST_F(LifecycleTest, NotifyFiresOnNaturalExit) {
  Tid seen{};
  vm.register_program("watched", [&](Task& t) -> sim::Co<void> {
    co_await t.compute(3.0);
  });
  vm.register_program("watcher", [&](Task& t) -> sim::Co<void> {
    Message m = co_await t.recv(kAny, 77);
    seen = Tid(t.rbuf().upk_int());
    EXPECT_EQ(m.tag, 77);
  });
  auto driver = [&]() -> sim::Proc {
    auto watched = co_await vm.spawn("watched", 1, "host1");
    auto watcher = co_await vm.spawn("watcher", 1, "host2");
    vm.notify_exit(watcher[0], watched[0], 77);
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_EQ(seen, Tid::make(0, 1));
}

TEST_F(LifecycleTest, NotifyFiresOnKill) {
  bool notified = false;
  vm.register_program("watched", [&](Task& t) -> sim::Co<void> {
    co_await t.compute(100.0);
  });
  vm.register_program("watcher", [&](Task& t) -> sim::Co<void> {
    co_await t.recv(kAny, 77);
    notified = true;
  });
  auto driver = [&]() -> sim::Proc {
    auto watched = co_await vm.spawn("watched", 1, "host1");
    auto watcher = co_await vm.spawn("watcher", 1, "host2");
    vm.notify_exit(watcher[0], watched[0], 77);
    co_await sim::Delay(eng, 2.0);
    vm.kill(watched[0]);
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_TRUE(notified);
}

TEST_F(LifecycleTest, NotifyOnAlreadyDeadFiresImmediately) {
  bool notified = false;
  vm.register_program("ghost", [](Task&) -> sim::Co<void> { co_return; });
  vm.register_program("watcher", [&](Task& t) -> sim::Co<void> {
    co_await t.recv(kAny, 88);
    notified = true;
  });
  auto driver = [&]() -> sim::Proc {
    auto ghost = co_await vm.spawn("ghost", 1, "host1");
    co_await vm.wait_exit(ghost[0]);
    auto watcher = co_await vm.spawn("watcher", 1, "host2");
    vm.notify_exit(watcher[0], ghost[0], 88);
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_TRUE(notified);
}

TEST_F(LifecycleTest, MultipleWatchersAllNotified) {
  int notified = 0;
  vm.register_program("watched", [&](Task& t) -> sim::Co<void> {
    co_await t.compute(3.0);
  });
  vm.register_program("watcher", [&](Task& t) -> sim::Co<void> {
    co_await t.recv(kAny, 99);
    ++notified;
  });
  auto driver = [&]() -> sim::Proc {
    auto watched = co_await vm.spawn("watched", 1, "host1");
    auto watchers = co_await vm.spawn("watcher", 3);
    for (Tid w : watchers) vm.notify_exit(w, watched[0], 99);
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_EQ(notified, 3);
}

TEST_F(LifecycleTest, GsCanUseNotifyToDetectTaskDeath) {
  // The pattern a fault-aware global scheduler uses: watch workers, respawn
  // on death.
  int respawned = 0;
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    co_await t.compute(5.0);
  });
  vm.register_program("supervisor", [&](Task& t) -> sim::Co<void> {
    std::vector<Tid> kids = co_await t.spawn("worker", 2);
    for (Tid k : kids) vm.notify_exit(t.tid(), k, 500);
    for (int deaths = 0; deaths < 2; ++deaths) {
      co_await t.recv(kAny, 500);
      ++respawned;
    }
  });
  auto driver = [&]() -> sim::Proc { co_await vm.spawn("supervisor", 1); };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_EQ(respawned, 2);
}

}  // namespace
}  // namespace cpe::pvm

namespace cpe::pvm {
namespace {

using cpe::test::WorknetFixture;
struct AddHostTest : WorknetFixture {};

TEST_F(AddHostTest, HostAddedMidRunAcceptsSpawnsAndMigrations) {
  // pvm_addhosts: grow the virtual machine while an application runs.
  mpvm::Mpvm migrator(vm);
  os::Host fresh(eng, net, os::HostConfig("host4", "HPPA", 1.0));
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 30'000;
    co_await t.compute(40.0);
  });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("worker", 1, "host1");
    co_await sim::Delay(eng, 2.0);
    vm.add_host(fresh);  // the pvmd starts on the new workstation
    // New spawns can land there...
    auto w = co_await vm.spawn("worker", 1, "host4");
    EXPECT_EQ(w[0].host_index(), 3u);
    // ...and existing tasks can migrate onto it.
    co_await migrator.migrate(v[0], fresh);
  };
  sim::spawn(eng, driver());
  eng.run();
  EXPECT_EQ(fresh.process_count(), 2u);
  EXPECT_EQ(migrator.history().size(), 1u);
}

}  // namespace
}  // namespace cpe::pvm
