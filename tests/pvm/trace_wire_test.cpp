// The causal-tracing envelope is not free: a valid trace context rides the
// wire and must be charged there — and only there.  This test pins the exact
// per-message overhead to obs::kTraceContextWireBytes by sending the same
// message twice, once untraced and once traced, and diffing the datagram
// byte counter (the same counter the net.datagram.bytes_sent gauge exports).
#include <gtest/gtest.h>

#include "obs/span.hpp"
#include "support/pvm_fixture.hpp"

namespace cpe::pvm {
namespace {

struct TraceWireFixture : cpe::test::WorknetFixture {};

TEST_F(TraceWireFixture, TracedMessageCostsExactlyTheContextBytes) {
  vm.register_program("rx", [&](Task& t) -> sim::Co<void> {
    co_await t.recv(kAny, 7);
    co_await t.recv(kAny, 7);
    co_await sim::Delay(eng, 5.0);  // exit traffic stays off the wire
  });
  vm.register_program("tx", [&](Task& t) -> sim::Co<void> {
    const Tid rx = Tid::make(1, 1);  // first task on host2
    co_await sim::Delay(eng, 1.0);
    t.initsend().pk_int(42);
    co_await t.send(rx, 7);  // untraced: no context on the task
    co_await sim::Delay(eng, 1.0);
    t.set_trace_context(vm.spans().start_trace());
    t.initsend().pk_int(42);
    co_await t.send(rx, 7);  // identical payload, now traced
    co_await sim::Delay(eng, 5.0);  // past the last byte-counter snapshot
  });
  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("rx", 1, "host2");
    co_await vm.spawn("tx", 1, "host1");
  };
  sim::spawn(eng, driver());

  // Quiet points between the sends: nothing else is on the wire.
  std::uint64_t before = 0, after_plain = 0, after_traced = 0;
  eng.schedule_at(0.9, [&] { before = net.datagrams().payload_bytes_sent(); });
  eng.schedule_at(1.9,
                  [&] { after_plain = net.datagrams().payload_bytes_sent(); });
  eng.schedule_at(2.9,
                  [&] { after_traced = net.datagrams().payload_bytes_sent(); });
  run_all();

  const std::uint64_t plain = after_plain - before;
  const std::uint64_t traced = after_traced - after_plain;
  EXPECT_GT(plain, 0u);
  EXPECT_EQ(traced, plain + obs::kTraceContextWireBytes);

  // The charge is a wire cost only: mailbox/state accounting (payload
  // bytes) must not see it.  The receiver adopted the incoming context.
  EXPECT_EQ(vm.spans().size(), 1u);  // one pvm.deliver for the traced msg
  EXPECT_EQ(vm.spans().spans().front().name, "pvm.deliver");
}

TEST_F(TraceWireFixture, ReceiverAdoptsIncomingContext) {
  obs::TraceContext sent_ctx;
  obs::TraceContext seen_ctx;
  vm.register_program("rx", [&](Task& t) -> sim::Co<void> {
    co_await t.recv(kAny, 7);
    seen_ctx = t.trace_context();
  });
  vm.register_program("tx", [&](Task& t) -> sim::Co<void> {
    sent_ctx = vm.spans().start_trace();
    t.set_trace_context(sent_ctx);
    t.initsend().pk_int(1);
    co_await t.send(Tid::make(1, 1), 7);
  });
  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("rx", 1, "host2");
    co_await vm.spawn("tx", 1, "host1");
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_TRUE(seen_ctx.valid());
  EXPECT_EQ(seen_ctx.trace_id, sent_ctx.trace_id);
}

}  // namespace
}  // namespace cpe::pvm
