#include "pvm/system.hpp"

#include <gtest/gtest.h>

#include "support/pvm_fixture.hpp"

namespace cpe::pvm {
namespace {

using cpe::test::WorknetFixture;

struct PvmSystemTest : WorknetFixture {};

TEST_F(PvmSystemTest, SpawnPlacesRoundRobin) {
  vm.register_program("noop", [](Task&) -> sim::Co<void> { co_return; });
  std::vector<Tid> tids;
  auto body = [&]() -> sim::Proc {
    tids = co_await vm.spawn("noop", 6);
  };
  sim::spawn(eng, body());
  run_all();
  ASSERT_EQ(tids.size(), 6u);
  EXPECT_EQ(tids[0].host_index(), 0u);
  EXPECT_EQ(tids[1].host_index(), 1u);
  EXPECT_EQ(tids[2].host_index(), 2u);
  EXPECT_EQ(tids[3].host_index(), 0u);
}

TEST_F(PvmSystemTest, SpawnOnNamedHost) {
  vm.register_program("noop", [](Task&) -> sim::Co<void> { co_return; });
  std::vector<Tid> tids;
  auto body = [&]() -> sim::Proc {
    tids = co_await vm.spawn("noop", 2, "host2");
  };
  sim::spawn(eng, body());
  run_all();
  ASSERT_EQ(tids.size(), 2u);
  EXPECT_EQ(tids[0].host_index(), 1u);
  EXPECT_EQ(tids[1].host_index(), 1u);
}

TEST_F(PvmSystemTest, SpawnUnknownProgramThrows) {
  auto body = [&]() -> sim::Proc { co_await vm.spawn("ghost", 1); };
  sim::spawn(eng, body());
  EXPECT_THROW(eng.run(), Error);
}

TEST_F(PvmSystemTest, SpawnUnknownHostThrows) {
  vm.register_program("noop", [](Task&) -> sim::Co<void> { co_return; });
  auto body = [&]() -> sim::Proc { co_await vm.spawn("noop", 1, "mars"); };
  sim::spawn(eng, body());
  EXPECT_THROW(eng.run(), Error);
}

TEST_F(PvmSystemTest, SpawnChargesForkExecTime) {
  vm.register_program("noop", [](Task&) -> sim::Co<void> { co_return; });
  double spawned_at = -1;
  auto body = [&]() -> sim::Proc {
    co_await vm.spawn("noop", 1);
    spawned_at = eng.now();
  };
  sim::spawn(eng, body());
  run_all();
  const auto& c = vm.costs().pvm;
  EXPECT_NEAR(spawned_at, c.spawn_fork_exec + c.enroll, 1e-9);
}

TEST_F(PvmSystemTest, RemoteSendRecvDeliversPayload) {
  vm.register_program("sender", [](Task& t) -> sim::Co<void> {
    t.initsend().pk_double(6.25);
    t.sbuf().pk_str("gradient");
    co_await t.send(Tid::make(1, 1), 42);
  });
  vm.register_program("receiver", [](Task& t) -> sim::Co<void> {
    Message m = co_await t.recv(kAny, 42);
    EXPECT_EQ(t.rbuf().upk_double(), 6.25);
    EXPECT_EQ(t.rbuf().upk_str(), "gradient");
    EXPECT_EQ(m.src, Tid::make(0, 1));
  });
  auto body = [&]() -> sim::Proc {
    co_await vm.spawn("receiver", 1, "host2");
    co_await vm.spawn("sender", 1, "host1");
  };
  sim::spawn(eng, body());
  run_all();
}

TEST_F(PvmSystemTest, LocalSendIsFasterThanRemote) {
  auto time_pair = [&](const std::string& dst_host) {
    sim::Engine e;
    net::Network n(e);
    os::Host a(e, n, os::HostConfig("hostA"));
    os::Host b(e, n, os::HostConfig("hostB"));
    PvmSystem v(e, n);
    v.add_host(a);
    v.add_host(b);
    double delivered_at = -1;
    v.register_program("src", [](Task& t) -> sim::Co<void> {
      Message hello = co_await t.recv(kAny, 0);
      t.initsend().pk_double(std::vector<double>(12'500, 1.0));  // 100 kB
      co_await t.send(hello.src, 1);
    });
    v.register_program("dst", [&delivered_at, &e](Task& t) -> sim::Co<void> {
      co_await sim::Delay(e, 2.0);  // both tasks certainly spawned
      t.initsend().pk_int(0);
      co_await t.send(Tid::make(0, 1), 0);
      co_await t.recv(kAny, 1);
      delivered_at = e.now();
    });
    auto body = [&]() -> sim::Proc {
      co_await v.spawn("src", 1, "hostA");
      co_await v.spawn("dst", 1, dst_host);
    };
    sim::spawn(e, body());
    e.run();
    return delivered_at;
  };
  const double local = time_pair("hostA");
  const double remote = time_pair("hostB");
  EXPECT_LT(local, remote);
}

TEST_F(PvmSystemTest, SendReturnsBeforeDelivery) {
  // pvm_send hands off to the daemon and returns; the wire transfer is
  // asynchronous.
  double send_returned_at = -1;
  double delivered_at = -1;
  vm.register_program("src", [&](Task& t) -> sim::Co<void> {
    t.initsend().pk_double(std::vector<double>(125'000, 0.0));  // 1 MB
    co_await t.send(Tid::make(1, 1), 1);
    send_returned_at = eng.now();
  });
  vm.register_program("dst", [&](Task& t) -> sim::Co<void> {
    co_await t.recv(kAny, 1);
    delivered_at = eng.now();
  });
  auto body = [&]() -> sim::Proc {
    co_await vm.spawn("dst", 1, "host2");
    co_await vm.spawn("src", 1, "host1");
  };
  sim::spawn(eng, body());
  run_all();
  // 1 MB over 10 Mb/s is ~1s of wire time; the send must return way before.
  EXPECT_LT(send_returned_at - 0.8, delivered_at - 1.0);
  EXPECT_GT(delivered_at - send_returned_at, 0.5);
}

TEST_F(PvmSystemTest, PerPairFifoPreservedAcrossSizes) {
  // A large message followed by a tiny one from the same sender must arrive
  // in order (the pvmd serializes its outgoing stream).
  std::vector<int> arrival_order;
  vm.register_program("src", [](Task& t) -> sim::Co<void> {
    t.initsend().pk_double(std::vector<double>(50'000, 0.0));  // 400 kB
    co_await t.send(Tid::make(1, 1), 1);
    t.initsend().pk_int(7);  // tiny
    co_await t.send(Tid::make(1, 1), 2);
  });
  vm.register_program("dst", [&](Task& t) -> sim::Co<void> {
    for (int i = 0; i < 2; ++i) {
      Message m = co_await t.recv(kAny, kAny);
      arrival_order.push_back(m.tag);
    }
  });
  auto body = [&]() -> sim::Proc {
    co_await vm.spawn("dst", 1, "host2");
    co_await vm.spawn("src", 1, "host1");
  };
  sim::spawn(eng, body());
  run_all();
  EXPECT_EQ(arrival_order, (std::vector<int>{1, 2}));
}

TEST_F(PvmSystemTest, McastReachesAllDestinations) {
  int received = 0;
  vm.register_program("root", [](Task& t) -> sim::Co<void> {
    std::vector<Tid> kids = co_await t.spawn("leaf", 3);
    t.initsend().pk_int(99);
    co_await t.mcast(kids, 5);
  });
  vm.register_program("leaf", [&](Task& t) -> sim::Co<void> {
    co_await t.recv(kAny, 5);
    EXPECT_EQ(t.rbuf().upk_int(), 99);
    ++received;
  });
  auto body = [&]() -> sim::Proc { co_await vm.spawn("root", 1); };
  sim::spawn(eng, body());
  run_all();
  EXPECT_EQ(received, 3);
}

TEST_F(PvmSystemTest, ParentTidVisibleToChild) {
  Tid root_tid;
  vm.register_program("root", [&](Task& t) -> sim::Co<void> {
    root_tid = t.tid();
    co_await t.spawn("child", 1);
    co_await t.recv(kAny, 1);  // wait for the child's ping
  });
  vm.register_program("child", [&](Task& t) -> sim::Co<void> {
    EXPECT_EQ(t.parent(), root_tid);
    t.initsend().pk_int(0);
    co_await t.send(t.parent(), 1);
  });
  auto body = [&]() -> sim::Proc { co_await vm.spawn("root", 1); };
  sim::spawn(eng, body());
  run_all();
}

TEST_F(PvmSystemTest, TrecvTimesOutWhenNoMessage) {
  bool timed_out = false;
  vm.register_program("lonely", [&](Task& t) -> sim::Co<void> {
    auto m = co_await t.trecv(kAny, 1, 2.0);
    timed_out = !m.has_value();
  });
  auto body = [&]() -> sim::Proc { co_await vm.spawn("lonely", 1); };
  sim::spawn(eng, body());
  run_all();
  EXPECT_TRUE(timed_out);
}

TEST_F(PvmSystemTest, NrecvAndProbe) {
  vm.register_program("src", [&](Task& t) -> sim::Co<void> {
    co_await sim::Delay(eng, 2.0);  // receiver certainly enrolled
    t.initsend().pk_int(1);
    co_await t.send(Tid::make(1, 1), 9);
  });
  vm.register_program("dst", [&](Task& t) -> sim::Co<void> {
    EXPECT_FALSE(t.probe(kAny, 9));
    EXPECT_EQ(t.nrecv(kAny, 9), std::nullopt);
    co_await sim::Delay(eng, 6.0);  // let the message arrive
    EXPECT_TRUE(t.probe(kAny, 9));
    auto m = t.nrecv(kAny, 9);
    EXPECT_TRUE(m.has_value());
    EXPECT_EQ(t.rbuf().upk_int(), 1);
  });
  auto body = [&]() -> sim::Proc {
    co_await vm.spawn("dst", 1, "host2");
    co_await vm.spawn("src", 1, "host1");
  };
  sim::spawn(eng, body());
  run_all();
}

TEST_F(PvmSystemTest, GroupJoinBarrierBcast) {
  int through_barrier = 0;
  int bcast_received = 0;
  vm.register_program("member", [&](Task& t) -> sim::Co<void> {
    const int inst = co_await t.joingroup("workers");
    co_await t.barrier("workers", 3);
    ++through_barrier;
    if (inst == 0) {
      t.initsend().pk_int(123);
      co_await t.gbcast("workers", 17);
    } else {
      co_await t.recv(kAny, 17);
      EXPECT_EQ(t.rbuf().upk_int(), 123);
      ++bcast_received;
    }
  });
  auto body = [&]() -> sim::Proc { co_await vm.spawn("member", 3); };
  sim::spawn(eng, body());
  run_all();
  EXPECT_EQ(through_barrier, 3);
  EXPECT_EQ(bcast_received, 2);
}

TEST_F(PvmSystemTest, BarrierActuallyBlocksUntilAllArrive) {
  std::vector<double> release_times;
  vm.register_program("member", [&](Task& t) -> sim::Co<void> {
    const int inst = co_await t.joingroup("g");
    co_await sim::Delay(eng, static_cast<double>(inst) * 10.0);
    co_await t.barrier("g", 3);
    release_times.push_back(eng.now());
  });
  auto body = [&]() -> sim::Proc { co_await vm.spawn("member", 3); };
  sim::spawn(eng, body());
  run_all();
  ASSERT_EQ(release_times.size(), 3u);
  // All released at (or just after) the last arrival at ~t_spawn + 20.
  for (double t : release_times) EXPECT_GT(t, 20.0);
  EXPECT_NEAR(release_times[0], release_times[2], 0.01);
}

TEST_F(PvmSystemTest, TaskComputeRunsOnItsHostCpu) {
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    const double start = eng.now();
    co_await t.compute(4.0);
    EXPECT_NEAR(eng.now() - start, 4.0, 1e-9);
  });
  auto body = [&]() -> sim::Proc { co_await vm.spawn("worker", 1, "host1"); };
  sim::spawn(eng, body());
  run_all();
}

TEST_F(PvmSystemTest, ComputeOnSlowerHostTakesLonger) {
  double hppa_time = -1, sparc_time = -1;
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    const double start = eng.now();
    co_await t.compute(4.0);
    (t.pvmd().host().arch() == "SPARC" ? sparc_time : hppa_time) =
        eng.now() - start;
  });
  auto body = [&]() -> sim::Proc {
    co_await vm.spawn("worker", 1, "host1");
    co_await vm.spawn("worker", 1, "sparc1");
  };
  sim::spawn(eng, body());
  run_all();
  EXPECT_NEAR(hppa_time, 4.0, 1e-9);
  EXPECT_NEAR(sparc_time, 4.0 / 0.8, 1e-6);
}

TEST_F(PvmSystemTest, WaitExitAndLiveCount) {
  vm.register_program("short", [&](Task& t) -> sim::Co<void> {
    co_await t.compute(1.0);
  });
  bool exited_seen = false;
  auto body = [&]() -> sim::Proc {
    auto tids = co_await vm.spawn("short", 2);
    EXPECT_EQ(vm.live_task_count(), 2u);
    co_await vm.wait_exit(tids[0]);
    co_await vm.wait_all_exited();
    exited_seen = true;
  };
  sim::spawn(eng, body());
  run_all();
  EXPECT_TRUE(exited_seen);
}

TEST_F(PvmSystemTest, MessageToExitedTaskIsDropped) {
  vm.register_program("ghost", [](Task&) -> sim::Co<void> { co_return; });
  vm.register_program("talker", [&](Task& t) -> sim::Co<void> {
    co_await sim::Delay(eng, 5.0);  // ghost long gone
    t.initsend().pk_int(0);
    co_await t.send(Tid::make(0, 1), 1);
    co_await sim::Delay(eng, 5.0);
  });
  auto body = [&]() -> sim::Proc {
    co_await vm.spawn("ghost", 1, "host1");
    co_await vm.spawn("talker", 1, "host2");
  };
  sim::spawn(eng, body());
  run_all();
  EXPECT_NE(vm.trace().find("pvmd", "dropping"), nullptr);
}

TEST_F(PvmSystemTest, SendWithoutInitsendThrows) {
  vm.register_program("bad", [](Task& t) -> sim::Co<void> {
    co_await t.send(Tid::make(0, 1), 1);
  });
  auto body = [&]() -> sim::Proc { co_await vm.spawn("bad", 1); };
  sim::spawn(eng, body());
  EXPECT_THROW(eng.run(), ContractError);
}

TEST_F(PvmSystemTest, StatsCountRoutedMessages) {
  vm.register_program("src", [](Task& t) -> sim::Co<void> {
    for (int i = 0; i < 3; ++i) {
      t.initsend().pk_int(i);
      co_await t.send(Tid::make(1, 1), 1);
    }
  });
  vm.register_program("dst", [](Task& t) -> sim::Co<void> {
    for (int i = 0; i < 3; ++i) co_await t.recv(kAny, 1);
  });
  auto body = [&]() -> sim::Proc {
    co_await vm.spawn("dst", 1, "host2");
    co_await vm.spawn("src", 1, "host1");
  };
  sim::spawn(eng, body());
  run_all();
  EXPECT_EQ(vm.messages_routed(), 3u);
  // Three one-int messages: each is a header plus 4 payload bytes on the wire.
  EXPECT_EQ(vm.bytes_routed(), 3 * (Buffer::kItemHeaderBytes + 4u));
  // The metrics registry sees the same traffic as the legacy counters.
  const obs::Counter* msgs = vm.metrics().find_counter("pvm.messages_routed");
  const obs::Counter* bytes = vm.metrics().find_counter("pvm.bytes_routed");
  ASSERT_NE(msgs, nullptr);
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(msgs->value(), vm.messages_routed());
  EXPECT_EQ(bytes->value(), vm.bytes_routed());
}

TEST_F(PvmSystemTest, RoutedBytesMatchPackedWireSize) {
  // The byte-accounting identity: what the sender's Buffer says it packed is
  // exactly what the router charges.  Before the wire-header fix these
  // disagreed (scalars and arrays traveled header-free), so the calibrated
  // migration cost model undercounted every multi-item message.
  std::size_t packed = 0;
  vm.register_program("src", [&](Task& t) -> sim::Co<void> {
    Buffer& b = t.initsend();
    b.pk_int(1);
    b.pk_double(std::vector<double>(16, 0.25));
    b.pk_str("wire-size identity");
    packed = b.bytes();
    co_await t.send(Tid::make(1, 1), 9);
  });
  vm.register_program("dst", [](Task& t) -> sim::Co<void> {
    co_await t.recv(kAny, 9);
  });
  auto body = [&]() -> sim::Proc {
    co_await vm.spawn("dst", 1, "host2");
    co_await vm.spawn("src", 1, "host1");
  };
  sim::spawn(eng, body());
  run_all();
  ASSERT_GT(packed, 0u);
  EXPECT_EQ(vm.bytes_routed(), packed);
}

TEST_F(PvmSystemTest, PingPongLatencyIsMilliseconds) {
  // Round-trip of tiny messages between two hosts: dominated by daemon
  // hops and per-fragment turnaround, i.e. a few ms each way in 1994.
  double rtt = -1;
  vm.register_program("ping", [&](Task& t) -> sim::Co<void> {
    std::vector<Tid> peer = co_await t.spawn("pong", 1, "host2");
    const double start = eng.now();
    t.initsend().pk_int(1);
    co_await t.send(peer[0], 1);
    co_await t.recv(kAny, 2);
    rtt = eng.now() - start;
  });
  vm.register_program("pong", [](Task& t) -> sim::Co<void> {
    Message m = co_await t.recv(kAny, 1);
    t.initsend().pk_int(2);
    co_await t.send(m.src, 2);
  });
  auto body = [&]() -> sim::Proc { co_await vm.spawn("ping", 1, "host1"); };
  sim::spawn(eng, body());
  run_all();
  EXPECT_GT(rtt, 1e-3);
  EXPECT_LT(rtt, 50e-3);
}

}  // namespace
}  // namespace cpe::pvm

namespace cpe::pvm {
namespace {

using cpe::test::WorknetFixture;
struct GroupOpsTest : WorknetFixture {};

TEST_F(GroupOpsTest, GettidGetinstGsize) {
  vm.register_program("member", [&](Task& t) -> sim::Co<void> {
    const int inst = co_await t.joingroup("g");
    co_await t.barrier("g", 3);
    EXPECT_EQ(t.getinst("g"), inst);
    EXPECT_EQ(t.gsize("g"), 3u);
    EXPECT_EQ(t.gettid("g", inst), t.tid());
    EXPECT_FALSE(t.gettid("g", 99).valid());
  });
  auto body = [&]() -> sim::Proc { co_await vm.spawn("member", 3); };
  sim::spawn(eng, body());
  run_all();
}

TEST_F(GroupOpsTest, LeavegroupShrinksMembership) {
  int final_size = -1;
  vm.register_program("member", [&](Task& t) -> sim::Co<void> {
    const int inst = co_await t.joingroup("g");
    co_await t.barrier("g", 3);
    if (inst == 2) co_await t.leavegroup("g");
    co_await sim::Delay(eng, 1.0);
    if (inst == 0) final_size = static_cast<int>(t.gsize("g"));
  });
  auto body = [&]() -> sim::Proc { co_await vm.spawn("member", 3); };
  sim::spawn(eng, body());
  run_all();
  EXPECT_EQ(final_size, 2);
}

TEST_F(GroupOpsTest, ReduceSumAccumulatesAtRoot) {
  std::vector<double> root_result;
  vm.register_program("member", [&](Task& t) -> sim::Co<void> {
    const int inst = co_await t.joingroup("g");
    co_await t.barrier("g", 4);
    std::vector<double> v{static_cast<double>(inst + 1), 10.0};
    co_await t.reduce_sum("g", v, 42, /*root_inst=*/0);
    if (inst == 0) root_result = v;
  });
  auto body = [&]() -> sim::Proc { co_await vm.spawn("member", 4); };
  sim::spawn(eng, body());
  run_all();
  ASSERT_EQ(root_result.size(), 2u);
  EXPECT_DOUBLE_EQ(root_result[0], 1 + 2 + 3 + 4);
  EXPECT_DOUBLE_EQ(root_result[1], 40.0);
}

TEST_F(GroupOpsTest, TasksAndConfigQueries) {
  vm.register_program("prober", [&](Task& t) -> sim::Co<void> {
    co_await t.joingroup("probers");
    co_await t.barrier("probers", 3);  // everyone alive now
    EXPECT_EQ(t.host_count(), 3u);
    EXPECT_EQ(t.tasks().size(), 3u);  // all three probers alive
    co_await t.barrier("probers", 3);  // nobody exits before the checks
  });
  auto body = [&]() -> sim::Proc { co_await vm.spawn("prober", 3); };
  sim::spawn(eng, body());
  run_all();
}

}  // namespace
}  // namespace cpe::pvm
