#include "pvm/tid.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace cpe::pvm {
namespace {

TEST(Tid, DefaultIsInvalid) {
  Tid t;
  EXPECT_FALSE(t.valid());
  EXPECT_EQ(t.raw(), 0);
}

TEST(Tid, MakeEncodesHostAndTask) {
  Tid t = Tid::make(3, 17);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.host_index(), 3u);
  EXPECT_EQ(t.task_num(), 17u);
}

TEST(Tid, HostZeroTaskZeroIsStillValid) {
  Tid t = Tid::make(0, 0);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.host_index(), 0u);
  EXPECT_EQ(t.task_num(), 0u);
}

TEST(Tid, DistinctTasksGetDistinctRawValues) {
  std::unordered_set<std::int32_t> seen;
  for (std::uint32_t h = 0; h < 8; ++h)
    for (std::uint32_t n = 0; n < 100; ++n)
      EXPECT_TRUE(seen.insert(Tid::make(h, n).raw()).second);
}

TEST(Tid, EqualityAndOrdering) {
  EXPECT_EQ(Tid::make(1, 2), Tid::make(1, 2));
  EXPECT_NE(Tid::make(1, 2), Tid::make(1, 3));
  EXPECT_LT(Tid::make(0, 5), Tid::make(1, 0));
}

TEST(Tid, HashWorksInUnorderedContainers) {
  std::unordered_set<Tid> set;
  set.insert(Tid::make(0, 1));
  set.insert(Tid::make(0, 1));
  set.insert(Tid::make(0, 2));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Tid, StrFormat) {
  EXPECT_EQ(Tid::make(2, 9).str(), "t2.9");
  EXPECT_EQ(Tid().str(), "t<none>");
}

TEST(Tid, InvalidAccessorsThrow) {
  Tid t;
  EXPECT_THROW((void)t.host_index(), ContractError);
  EXPECT_THROW((void)t.task_num(), ContractError);
}

TEST(Tid, TaskNumWrapsWithinMask) {
  Tid t = Tid::make(1, Tid::kTaskMask);
  EXPECT_EQ(t.task_num(), static_cast<std::uint32_t>(Tid::kTaskMask));
}

}  // namespace
}  // namespace cpe::pvm
