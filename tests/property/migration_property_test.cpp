// ConcurrentMigrationSweep (DESIGN.md §12): k concurrent admission slots ×
// a fault scenario, against a worknet of chatting task pairs that keep
// sending while the Global Scheduler drains their host.  Every cell asserts
// the concurrency-safety properties the tentpole promises:
//
//   * no deadlock — every task finishes its program before the horizon
//     (a wedged flush/transfer would leave live tasks behind);
//   * no lost or duplicated message — each pair's echo stream arrives
//     exactly once, in order, across however many relocations raced it;
//   * fencing monotonicity and protocol shape — the TraceAuditor replays
//     the run's spans and must come back clean (stage completeness, scoped
//     flush, residual linkage, epoch monotonicity, abort handling).
//
// Faults land on the preferred destination *before* the first restart can
// have landed there, so crashes/partitions force rollback-and-retry rather
// than task loss (destination death after the point of no return is a
// different, checkpoint-shaped story — covered in tests/fault).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "fault/fault.hpp"
#include "gs/scheduler.hpp"
#include "mpvm/mpvm.hpp"
#include "obs/audit.hpp"

namespace cpe {
namespace {

using pvm::Task;
using pvm::Tid;

enum class FaultKind { kNone, kCrash, kFreeze, kPartition };

std::string fault_name(FaultKind f) {
  switch (f) {
    case FaultKind::kNone: return "None";
    case FaultKind::kCrash: return "Crash";
    case FaultKind::kFreeze: return "Freeze";
    case FaultKind::kPartition: return "Partition";
  }
  return "?";
}

class ConcurrentMigrationSweep
    : public ::testing::TestWithParam<std::tuple<int, FaultKind>> {};

TEST_P(ConcurrentMigrationSweep, DrainsWithoutDeadlockLossOrDuplication) {
  const auto [k, fault] = GetParam();
  constexpr int kPairs = 4;        // 8 tasks on the drained host
  constexpr int kRounds = 30;      // ping-pong exchanges per pair
  constexpr double kHorizon = 120.0;

  sim::Engine eng;
  net::Network net(eng);
  os::Host src(eng, net, os::HostConfig("src", "HPPA", 1.0));
  std::vector<std::unique_ptr<os::Host>> dests;
  for (int i = 1; i <= 4; ++i)
    dests.push_back(std::make_unique<os::Host>(
        eng, net, os::HostConfig("d" + std::to_string(i), "HPPA", 1.0)));
  pvm::PvmSystem vm(eng, net);
  vm.add_host(src);
  for (auto& d : dests) vm.add_host(*d);
  mpvm::Mpvm mpvm(vm);

  gs::GsPolicy policy;
  policy.max_concurrent_migrations = k;
  policy.migration_watchdog = 8.0;  // abort wedged streams well inside horizon
  gs::GlobalScheduler gs(vm, policy);
  gs.attach(mpvm);

  // Each pair ping-pongs sequence numbers: odd instances initiate, even
  // instances echo.  Both sides record what they unpacked so the properties
  // below can check exactly-once, in-order delivery end to end.
  std::map<unsigned, std::vector<int>> got;  // inst -> seqs, arrival order
  vm.register_program("chatter", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 2'000'000;
    const std::uint32_t inst = t.tid().task_num();
    const bool initiator = (inst % 2) == 1;
    const Tid peer = Tid::make(0, initiator ? inst + 1 : inst - 1);
    // Spawns serialize at ~0.38 s/task: wait until the whole worknet is
    // enrolled (a message to a not-yet-spawned tid is simply lost).
    co_await sim::Delay(eng, 5.0);
    for (int i = 0; i < kRounds; ++i) {
      if (initiator) {
        t.initsend().pk_int(i);
        co_await t.send(peer, 11);
        co_await t.recv(pvm::kAny, 12);
        got[inst].push_back(t.rbuf().upk_int());
      } else {
        co_await t.recv(pvm::kAny, 11);
        const int seq = t.rbuf().upk_int();
        got[inst].push_back(seq);
        t.initsend().pk_int(seq);
        co_await t.send(peer, 12);
      }
      co_await t.compute(0.5);  // keep chatting across the whole drain
    }
  });

  fault::FaultPlan plan(eng, /*seed=*/k * 10 + static_cast<int>(fault));
  os::Host& d1 = *dests[0];  // ranked first: migrations hit it before faults
  switch (fault) {
    case FaultKind::kNone:
      break;
    case FaultKind::kCrash:
      // Dies before the first restart can land (earliest ≈ 6.6 s): every
      // stream aimed at it rolls back and retries elsewhere.
      plan.crash_at(d1, 5.3);
      plan.recover_at(d1, 20.0);
      break;
    case FaultKind::kFreeze:
      plan.freeze_at(d1, 5.3, 4.0);
      break;
    case FaultKind::kPartition: {
      os::Host* island[] = {&d1};
      plan.partition_window(net.ethernet(), island, 5.3, 4.0);
      break;
    }
  }

  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("chatter", 2 * kPairs, "src");
    co_await sim::Delay(eng, 5.0 - eng.now());
    os::OwnerEvent ev(eng.now(), src, os::OwnerAction::kReclaim, 1);
    gs.on_owner_event(ev);
  };
  sim::spawn(eng, driver());
  gs.start_heartbeat(kHorizon);
  eng.run_until(kHorizon);

  // No deadlock, no task loss: every chatter ran to completion.
  EXPECT_EQ(vm.live_task_count(), 0u)
      << "k=" << k << " fault=" << fault_name(fault)
      << ": tasks still blocked at horizon";

  // No lost or duplicated message: both directions of every pair saw the
  // full sequence exactly once, in order.
  ASSERT_EQ(got.size(), static_cast<std::size_t>(2 * kPairs));
  for (const auto& [inst, seqs] : got) {
    ASSERT_EQ(seqs.size(), static_cast<std::size_t>(kRounds))
        << "t0." << inst << " (k=" << k << " fault=" << fault_name(fault)
        << ")";
    for (int i = 0; i < kRounds; ++i)
      EXPECT_EQ(seqs[static_cast<std::size_t>(i)], i) << "t0." << inst;
  }

  // Every admitted stream resolved (released or reaped): nothing leaks.
  EXPECT_EQ(gs.admission().active(), 0u);

  // Protocol shape + fencing: the auditor replays the whole run.
  const obs::TraceAuditor auditor(vm.spans());
  EXPECT_TRUE(auditor.ok()) << obs::TraceAuditor::format(auditor.audit());
}

INSTANTIATE_TEST_SUITE_P(
    KByFault, ConcurrentMigrationSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(FaultKind::kNone, FaultKind::kCrash,
                                         FaultKind::kFreeze,
                                         FaultKind::kPartition)),
    [](const ::testing::TestParamInfo<std::tuple<int, FaultKind>>& info) {
      return "K" + std::to_string(std::get<0>(info.param)) +
             fault_name(std::get<1>(info.param));
    });

}  // namespace
}  // namespace cpe
