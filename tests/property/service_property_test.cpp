// ServiceTailSweep: arrival profile x placement policy x fault plan x seed.
//
// Every cell runs one open-loop serving scenario (svc::run_scenario) on a
// small cluster and asserts the invariants that must hold under ANY
// composition of the axes:
//   * exactly-once resolution — every issued request lands in exactly one of
//     {completed, timeouts, rejected} and nothing is pending after the drain
//     grace;
//   * no dangling request spans — the TraceAuditor's request-completeness
//     invariant (obs/audit.hpp, invariant 9) holds over the sampled traces;
//   * the whole trace audit is clean (send-before-receive, freeze fencing,
//     migration spans, ... — invariants 1-8 keep holding with svc on top).
//
// Cells are deliberately small (seconds of virtual time, thousands of
// requests) so the sweep stays fast; bench_service_tail carries the scale
// and tail-latency gates.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "svc/scenario.hpp"

namespace cpe::svc {
namespace {

struct Cell {
  const char* tag;
  ArrivalKind arrival;
  RouteKind route;
  load::PolicyKind policy;
  bool precopy;
  FaultKind fault;
  std::uint64_t seed;

  Cell(const char* tag_, ArrivalKind a, RouteKind r, load::PolicyKind p,
       bool pre, FaultKind f, std::uint64_t s)
      : tag(tag_), arrival(a), route(r), policy(p), precopy(pre), fault(f),
        seed(s) {}
};

std::string cell_name(const ::testing::TestParamInfo<Cell>& info) {
  return info.param.tag + std::string("_seed") +
         std::to_string(info.param.seed);
}

class ServiceTailSweep : public ::testing::TestWithParam<Cell> {};

TEST_P(ServiceTailSweep, ExactlyOnceAndCleanAudit) {
  const Cell& c = GetParam();

  ScenarioRow row;
  row.name = std::string("sweep_") + c.tag;
  row.hosts = 6;
  row.frontends = 1;
  row.workers = 8;
  row.arrival = c.arrival;
  row.rate = 120.0;
  row.amplitude = 0.6;
  row.period = 40.0;  // one full diurnal cycle inside the cell
  if (c.arrival == ArrivalKind::kTrace) {
    // Deterministic bursty trace: bursts of 8 every 250 ms.
    for (int burst = 0; burst * 0.25 < 35.0; ++burst)
      for (int k = 0; k < 8; ++k) row.trace.push_back(burst * 0.25);
  }
  row.route = c.route;
  row.service_demand = 15e-3;
  row.timeout = 1.0;
  row.policy = c.policy;
  row.precopy = c.precopy;
  row.queue_weight = 0.25;
  row.poll_interval = 1.0;
  row.min_residency = 3.0;
  row.fault = c.fault;
  row.storm_hosts = 2;
  row.storm_jobs = 6;
  row.storm_period = 10.0;
  row.fault_start = 5.0;
  row.seed = c.seed;
  row.horizon = 40.0;

  const ScenarioResult r = run_scenario(row);

  EXPECT_GT(r.issued, 1000u) << "open loop under-generated";
  EXPECT_TRUE(r.exactly_once)
      << "issued=" << r.issued << " completed=" << r.completed
      << " timeouts=" << r.timeouts << " rejected=" << r.rejected
      << " pending=" << r.pending;
  EXPECT_EQ(r.pending, 0u);
  EXPECT_EQ(r.audit_violations, 0u) << r.audit_report;
  EXPECT_GT(r.spans, 0u);
  if (c.fault != FaultKind::kNone) EXPECT_GT(r.faults_injected, 0u);
  // The serving layer must never trick the placement layer into thrash.
  EXPECT_EQ(r.thrash_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Cells, ServiceTailSweep,
    ::testing::Values(
        Cell("poisson_none_quiet", ArrivalKind::kPoisson,
             RouteKind::kRoundRobin, load::PolicyKind::kNone, false,
             FaultKind::kNone, 1),
        Cell("poisson_bestfit_storm", ArrivalKind::kPoisson,
             RouteKind::kLeastOutstanding, load::PolicyKind::kBestFit, false,
             FaultKind::kStorm, 1),
        Cell("poisson_bestfit_storm", ArrivalKind::kPoisson,
             RouteKind::kLeastOutstanding, load::PolicyKind::kBestFit, false,
             FaultKind::kStorm, 2),
        Cell("poisson_bestfit_precopy_storm", ArrivalKind::kPoisson,
             RouteKind::kLeastOutstanding, load::PolicyKind::kBestFit, true,
             FaultKind::kStorm, 1),
        Cell("poisson_worksteal_crash", ArrivalKind::kPoisson,
             RouteKind::kRoundRobin, load::PolicyKind::kWorkSteal, false,
             FaultKind::kCrash, 1),
        Cell("poisson_swap_freeze", ArrivalKind::kPoisson,
             RouteKind::kLocalityAffine, load::PolicyKind::kDestinationSwap,
             false, FaultKind::kFreeze, 1),
        Cell("diurnal_bestfit_quiet", ArrivalKind::kDiurnal,
             RouteKind::kLeastOutstanding, load::PolicyKind::kBestFit, false,
             FaultKind::kNone, 1),
        Cell("diurnal_bestfit_storm", ArrivalKind::kDiurnal,
             RouteKind::kLeastOutstanding, load::PolicyKind::kBestFit, false,
             FaultKind::kStorm, 3),
        Cell("diurnal_threshold_flap", ArrivalKind::kDiurnal,
             RouteKind::kRoundRobin, load::PolicyKind::kThreshold, false,
             FaultKind::kFlap, 1),
        Cell("trace_bestfit_quiet", ArrivalKind::kTrace,
             RouteKind::kLeastOutstanding, load::PolicyKind::kBestFit, false,
             FaultKind::kNone, 1),
        Cell("trace_worksteal_storm", ArrivalKind::kTrace,
             RouteKind::kLeastOutstanding, load::PolicyKind::kWorkSteal,
             false, FaultKind::kStorm, 2)),
    cell_name);

}  // namespace
}  // namespace cpe::svc
