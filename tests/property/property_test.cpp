// Parameterized property suites: sweeps over migration timings, data sizes,
// encodings, loss rates and partition shapes, asserting the DESIGN.md
// invariants at every point.
#include <gtest/gtest.h>

#include <unordered_map>

#include "adm/partition.hpp"
#include "apps/opt/adm_opt.hpp"
#include "apps/opt/opt_app.hpp"
#include "gs/ha.hpp"
#include "mpvm/mpvm.hpp"
#include "os/owner.hpp"
#include "pvm/fence.hpp"
#include "sim/random.hpp"

namespace cpe {
namespace {

// ---------------------------------------------------------------------------
// Property: MPVM migration is transparent no matter *when* it happens.
// ---------------------------------------------------------------------------

class MigrationTimingSweep : public ::testing::TestWithParam<double> {};

opt::OptResult run_opt_with_migration(double migrate_at,
                                      std::uint64_t* checksum_quiet) {
  auto run = [](std::optional<double> at) {
    sim::Engine eng;
    net::Network net(eng);
    os::Host host1(eng, net, os::HostConfig("host1", "HPPA", 1.0));
    os::Host host2(eng, net, os::HostConfig("host2", "HPPA", 1.0));
    pvm::PvmSystem vm(eng, net);
    vm.add_host(host1);
    vm.add_host(host2);
    mpvm::Mpvm mpvm(vm);
    opt::OptConfig cfg;
    cfg.data_bytes = 120'000;
    cfg.nslaves = 2;
    cfg.iterations = 6;
    cfg.real_math = true;
    opt::PvmOpt app(vm, cfg);
    opt::OptResult r;
    auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
    sim::spawn(eng, driver());
    if (at.has_value()) {
      auto mig = [](sim::Engine* e, opt::PvmOpt* a, mpvm::Mpvm* m,
                    os::Host* dst, double delay) -> sim::Co<void> {
        while (!a->slaves_are_ready()) co_await a->slaves_ready().wait();
        co_await sim::Delay(*e, delay);
        co_await m->migrate(a->slave_tid(0), *dst);
      };
      sim::spawn(eng, mig(&eng, &app, &mpvm, &host2, *at));
    }
    eng.run();
    return r;
  };
  if (checksum_quiet != nullptr) *checksum_quiet = run(std::nullopt).net_checksum;
  return run(migrate_at);
}

TEST_P(MigrationTimingSweep, TrainedNetworkIsBitIdentical) {
  std::uint64_t quiet = 0;
  const opt::OptResult migrated =
      run_opt_with_migration(GetParam(), &quiet);
  EXPECT_EQ(migrated.net_checksum, quiet);
  EXPECT_EQ(migrated.iterations_done, 6);
}

INSTANTIATE_TEST_SUITE_P(AcrossTheRun, MigrationTimingSweep,
                         ::testing::Values(0.0, 0.05, 0.15, 0.3, 0.5, 0.7));

// ---------------------------------------------------------------------------
// Property: message streams survive migration under datagram loss.
// ---------------------------------------------------------------------------

class LossyWorknet : public ::testing::TestWithParam<double> {};

TEST_P(LossyWorknet, SequencePreservedAcrossMigration) {
  sim::Engine eng;
  net::Network net(eng);
  net.datagrams().set_loss_probability(GetParam());
  os::Host host1(eng, net, os::HostConfig("host1", "HPPA", 1.0));
  os::Host host2(eng, net, os::HostConfig("host2", "HPPA", 1.0));
  pvm::PvmSystem vm(eng, net);
  vm.add_host(host1);
  vm.add_host(host2);
  mpvm::Mpvm mpvm(vm);

  std::vector<int> delivered;
  vm.register_program("sink", [&](pvm::Task& t) -> sim::Co<void> {
    for (int i = 0; i < 25; ++i) {
      co_await t.recv(pvm::kAny, 1);
      delivered.push_back(t.rbuf().upk_int());
    }
  });
  vm.register_program("source", [&](pvm::Task& t) -> sim::Co<void> {
    for (int i = 0; i < 25; ++i) {
      t.initsend().pk_int(i);
      co_await t.send(pvm::Tid::make(0, 1), 1);
      co_await sim::Delay(eng, 0.4);
    }
  });
  auto driver = [&]() -> sim::Proc {
    auto sink = co_await vm.spawn("sink", 1, "host1");
    co_await vm.spawn("source", 1, "host2");
    co_await sim::Delay(eng, 4.0);
    co_await mpvm.migrate(sink[0], host2);
    co_await sim::Delay(eng, 3.0);
    co_await mpvm.migrate(sink[0], host1);
  };
  sim::spawn(eng, driver());
  eng.run();
  ASSERT_EQ(delivered.size(), 25u);
  for (int i = 0; i < 25; ++i)
    EXPECT_EQ(delivered[static_cast<std::size_t>(i)], i);
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossyWorknet,
                         ::testing::Values(0.0, 0.05, 0.15, 0.3));

// ---------------------------------------------------------------------------
// Property: ADM conserves the exemplar multiset for any event schedule.
// ---------------------------------------------------------------------------

struct AdmStorm {
  int nslaves;
  int events;
  std::uint64_t seed;
};

class AdmEventStorm
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AdmEventStorm, DataConservedAndRunCompletes) {
  const int nslaves = std::get<0>(GetParam());
  const int nevents = std::get<1>(GetParam());

  sim::Engine eng;
  net::Network net(eng);
  os::Host host1(eng, net, os::HostConfig("host1", "HPPA", 1.0));
  os::Host host2(eng, net, os::HostConfig("host2", "HPPA", 1.0));
  os::Host host3(eng, net, os::HostConfig("host3", "HPPA", 1.0));
  pvm::PvmSystem vm(eng, net);
  vm.add_host(host1);
  vm.add_host(host2);
  vm.add_host(host3);

  opt::AdmOptConfig cfg;
  cfg.opt.data_bytes = 260'000;
  cfg.opt.nslaves = nslaves;
  cfg.opt.iterations = 8;
  cfg.opt.real_math = false;
  cfg.opt.slave_hosts.clear();
  const char* hosts[] = {"host1", "host2", "host3"};
  for (int s = 0; s < nslaves; ++s)
    cfg.opt.slave_hosts.push_back(hosts[s % 3]);
  cfg.chunk_items = 32;
  opt::AdmOpt app(vm, cfg);
  opt::OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(eng, driver());

  // A deterministic storm of withdraw/rejoin events.  Withdrawals and
  // rejoins alternate per slave so at least one slave always holds data.
  auto storm = [](sim::Engine* e, opt::AdmOpt* a, int n, int k,
                  int slaves) -> sim::Co<void> {
    while (!a->slaves_are_ready()) co_await a->slaves_ready().wait();
    std::vector<bool> out(static_cast<std::size_t>(slaves), false);
    sim::Rng rng(static_cast<std::uint64_t>(n * 31 + k));
    for (int i = 0; i < k; ++i) {
      co_await sim::Delay(*e, 0.4 + rng.uniform() * 1.2);
      // Never withdraw the last active slave.
      int active = 0;
      for (bool o : out)
        if (!o) ++active;
      const int victim = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(slaves)));
      const auto v = static_cast<std::size_t>(victim);
      if (!out[v] && active > 1) {
        a->post_event(victim, adm::AdmEventKind::kWithdraw);
        out[v] = true;
      } else if (out[v]) {
        a->post_event(victim, adm::AdmEventKind::kRejoin);
        out[v] = false;
      }
    }
  };
  sim::spawn(eng, storm(&eng, &app, nslaves, nevents, nslaves));
  eng.run();

  EXPECT_EQ(r.iterations_done, 8) << "run deadlocked";
  EXPECT_EQ(app.final_data_checksum(), r.data_checksum)
      << "exemplars lost or duplicated";
  EXPECT_EQ(app.final_item_count(), 260'000u / 260);
}

INSTANTIATE_TEST_SUITE_P(Storms, AdmEventStorm,
                         ::testing::Combine(::testing::Values(2, 3),
                                            ::testing::Values(1, 3, 6)));

// ---------------------------------------------------------------------------
// Property: weighted partitions are exact for any share/weight shape.
// ---------------------------------------------------------------------------

class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(PartitionSweep, SharesSumAndPlanConserves) {
  const std::size_t total = std::get<0>(GetParam());
  const std::size_t n = std::get<1>(GetParam());
  sim::Rng rng(total * 131 + n);

  std::vector<double> weights(n);
  for (double& w : weights) w = rng.uniform(0.0, 4.0);
  weights[rng.below(n)] = 0.0;        // one withdrawn slave
  weights[rng.below(n)] += 1.0;       // ensure a positive weight exists

  const std::vector<std::size_t> target = adm::weighted_shares(total, weights);
  std::size_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += target[i];
    if (weights[i] == 0.0) {
      EXPECT_EQ(target[i], 0u);
    }
  }
  EXPECT_EQ(sum, total);

  const std::vector<std::size_t> current = adm::equal_shares(total, n);
  std::vector<std::size_t> state = current;
  for (const adm::Transfer& t : adm::plan_moves(current, target)) {
    ASSERT_GE(state[static_cast<std::size_t>(t.from)], t.count);
    state[static_cast<std::size_t>(t.from)] -= t.count;
    state[static_cast<std::size_t>(t.to)] += t.count;
  }
  EXPECT_EQ(state, target);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 17, 100, 9999),
                       ::testing::Values<std::size_t>(2, 3, 7, 16)));

// ---------------------------------------------------------------------------
// Property: buffers round-trip under every encoding.
// ---------------------------------------------------------------------------

class EncodingSweep : public ::testing::TestWithParam<pvm::Encoding> {};

TEST_P(EncodingSweep, MixedPayloadRoundTrips) {
  sim::Rng rng(7);
  pvm::Buffer b(GetParam());
  std::vector<double> doubles(257);
  std::vector<std::int32_t> ints(63);
  std::vector<float> floats(129);
  for (auto& v : doubles) v = rng.normal(0, 100);
  for (auto& v : ints) v = static_cast<std::int32_t>(rng.next_u64());
  for (auto& v : floats) v = static_cast<float>(rng.normal());
  b.pk_double(doubles);
  b.pk_str("mixed payload");
  b.pk_int(ints);
  b.pk_float(floats);

  std::vector<double> d2(doubles.size());
  std::vector<std::int32_t> i2(ints.size());
  std::vector<float> f2(floats.size());
  b.upk_double(d2);
  EXPECT_EQ(b.upk_str(), "mixed payload");
  b.upk_int(i2);
  b.upk_float(f2);
  EXPECT_EQ(d2, doubles);
  EXPECT_EQ(i2, ints);
  EXPECT_EQ(f2, floats);
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, EncodingSweep,
                         ::testing::Values(pvm::Encoding::kDefault,
                                           pvm::Encoding::kRaw,
                                           pvm::Encoding::kInPlace));

// ---------------------------------------------------------------------------
// Property: the simulation replays identically for a given seed, and
// differently for different owner-activity seeds.
// ---------------------------------------------------------------------------

class ReplaySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplaySweep, IdenticalTraceForIdenticalSeed) {
  auto run = [&](std::uint64_t seed) {
    sim::Engine eng;
    net::Network net(eng);
    os::Host host1(eng, net, os::HostConfig("host1", "HPPA", 1.0));
    os::Host host2(eng, net, os::HostConfig("host2", "HPPA", 1.0));
    pvm::PvmSystem vm(eng, net);
    vm.add_host(host1);
    vm.add_host(host2);
    os::StochasticOwner::Params p;
    p.mean_idle = 0.3;  // busy enough to perturb a ~1 s run
    p.mean_busy = 0.5;
    os::StochasticOwner owner(eng, {&host1, &host2}, p, sim::Rng(seed));
    owner.start(300.0);
    opt::OptConfig cfg;
    cfg.data_bytes = 120'000;
    cfg.iterations = 5;
    opt::PvmOpt app(vm, cfg);
    opt::OptResult r;
    auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
    sim::spawn(eng, driver());
    eng.run();
    return r.runtime();
  };
  EXPECT_DOUBLE_EQ(run(GetParam()), run(GetParam()));
  EXPECT_NE(run(GetParam()), run(GetParam() + 1000));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplaySweep, ::testing::Values(1u, 7u, 42u));

// ---------------------------------------------------------------------------
// Property: GS retry backoff is monotone and bounded for any policy shape.
// Before the ceiling fix the delay grew as factor^n without limit, so a long
// owner occupation pushed the next retry arbitrarily far past the owner's
// departure.
// ---------------------------------------------------------------------------

class BackoffClampSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(BackoffClampSweep, BackoffIsMonotoneAndNeverExceedsTheCeiling) {
  gs::GsPolicy policy;
  policy.retry_backoff = std::get<0>(GetParam());
  policy.retry_backoff_factor = std::get<1>(GetParam());
  policy.retry_backoff_max = std::get<2>(GetParam());

  double backoff = policy.retry_backoff;
  double prev = 0.0;
  bool capped = false;
  for (int attempt = 0; attempt < 64; ++attempt) {
    // The delay actually slept is whatever the loop holds this iteration.
    EXPECT_GE(backoff, prev);  // monotone
    if (attempt > 0) {
      EXPECT_LE(backoff, policy.retry_backoff_max);  // bounded
    }
    if (backoff == policy.retry_backoff_max) capped = true;
    if (capped) {
      EXPECT_EQ(backoff, policy.retry_backoff_max);  // sticky cap
    }
    prev = backoff;
    backoff = policy.next_backoff(backoff);
  }
  // 64 doublings overflow any sane ceiling: the cap must have engaged.
  EXPECT_TRUE(capped);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyShapes, BackoffClampSweep,
    ::testing::Combine(::testing::Values(0.5, 2.0, 10.0),    // initial
                       ::testing::Values(1.5, 2.0, 4.0),     // factor
                       ::testing::Values(15.0, 30.0, 120.0)  // ceiling
                       ));

// ---------------------------------------------------------------------------
// Property: the migration fence admits a monotone epoch sequence — whatever
// order (stale, fresh, repeated) epochs arrive in, no admitted command ever
// carries an epoch below a previously admitted one.
// ---------------------------------------------------------------------------

class FenceEpochSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FenceEpochSweep, AdmittedEpochsAreMonotone) {
  sim::Rng rng(GetParam());
  pvm::MigrationFence fence;
  std::uint64_t last_admitted = 0, max_seen = 0;
  std::uint64_t admitted = 0, rejected = 0;
  for (int i = 0; i < 500; ++i) {
    const auto e = static_cast<std::uint64_t>(rng.uniform(1.0, 64.0));
    max_seen = std::max(max_seen, e);
    if (fence.admit(e)) {
      EXPECT_GE(e, last_admitted);  // never behind an admitted command
      last_admitted = e;
      ++admitted;
    } else {
      EXPECT_LT(e, last_admitted);  // only genuinely stale epochs bounce
      ++rejected;
    }
  }
  EXPECT_EQ(fence.floor(), last_admitted);
  EXPECT_EQ(fence.floor(), max_seen);  // the newest epoch always wins
  EXPECT_EQ(fence.admitted(), admitted);
  EXPECT_EQ(fence.rejected(), rejected);
  EXPECT_EQ(admitted + rejected, 500u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FenceEpochSweep,
                         ::testing::Values(1u, 7u, 23u, 99u, 1234u));

// ---------------------------------------------------------------------------
// Property: whenever the GS leader crashes — early, mid-transfer, or after
// the vacate resolved — the cluster re-elects within the latency bound with
// strictly increasing terms, no task is ever migrated twice, and no command
// with a stale epoch is executed.
// ---------------------------------------------------------------------------

class LeaderCrashSweep : public ::testing::TestWithParam<double> {};

TEST_P(LeaderCrashSweep, ReelectsWithMonotoneTermsAndNoDoubleMigration) {
  sim::Engine eng;
  net::Network net(eng);
  os::Host host1(eng, net, os::HostConfig("host1", "HPPA", 1.0));
  os::Host host2(eng, net, os::HostConfig("host2", "HPPA", 1.0));
  os::Host host3(eng, net, os::HostConfig("host3", "HPPA", 1.0));
  os::Host gsbox1(eng, net, os::HostConfig("gs1", "HPPA", 1.0));
  os::Host gsbox2(eng, net, os::HostConfig("gs2", "HPPA", 1.0));
  os::Host gsbox3(eng, net, os::HostConfig("gs3", "HPPA", 1.0));
  pvm::PvmSystem vm(eng, net);
  vm.add_host(host1);
  vm.add_host(host2);
  vm.add_host(host3);
  mpvm::Mpvm mpvm(vm);
  gs::HaScheduler ha(vm, {&gsbox1, &gsbox2, &gsbox3});
  ha.attach(mpvm);
  ha.start(60.0);
  std::string final_host;
  double finished = -1;
  vm.register_program("worker", [&](pvm::Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 2'000'000;
    co_await t.compute(25.0);
    finished = eng.now();
    final_host = t.pvmd().host().name();
  });
  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("worker", 1, "host1");
    co_await sim::Delay(eng, 1.0);
    ha.on_owner_event(
        os::OwnerEvent(eng.now(), host1, os::OwnerAction::kReclaim, 1));
  };
  sim::spawn(eng, driver());
  eng.schedule_at(GetParam(), [&] { gsbox1.crash(); });
  eng.run();

  const auto& ch = ha.leadership_changes();
  ASSERT_GE(ch.size(), 2u);
  for (std::size_t i = 1; i < ch.size(); ++i)
    EXPECT_GT(ch[i].term, ch[i - 1].term);  // terms only move forward
  // The failover-latency bound holds at every crash phase.
  EXPECT_LE(ch[1].t - GetParam(), 3.0 * ha.policy().heartbeat_interval);
  // No task is ever migrated twice, crash the leader when you will.
  std::unordered_map<std::int32_t, int> per_task;
  for (const auto& h : mpvm.history()) ++per_task[h.task.raw()];
  for (const auto& [tid, n] : per_task)
    EXPECT_LE(n, 1) << "task " << tid << " migrated " << n << " times";
  // No stale-epoch command executed: the floor tracks the last elected term
  // and nothing was ever rejected (every issued command was current).
  EXPECT_EQ(ha.fence()->floor(), ch.back().term);
  EXPECT_EQ(ha.fence()->rejected(), 0u);
  // And the reclaim itself was honoured across the failover.
  EXPECT_NE(final_host, "host1");
  EXPECT_GT(finished, 25.0);
  EXPECT_EQ(vm.live_task_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(CrashPhases, LeaderCrashSweep,
                         ::testing::Values(1.2, 1.8, 2.4, 3.2, 4.5));

}  // namespace
}  // namespace cpe
