// AdversarialNetworkSweep (DESIGN.md §7): an adversarial fabric scenario ×
// k concurrent admission slots, against a worknet of chatting task pairs
// that keep sending while the Global Scheduler drains their host.  The
// adversary arms *before* the drain starts, so every layer — app chatter,
// flush rounds, restart broadcasts, state transfer, GS control RPCs — runs
// over a fabric that duplicates, reorders, corrupts, delays, and drops.
//
// Every cell asserts the end-to-end exactly-once properties the tentpole
// promises:
//
//   * no deadlock — every task finishes its program before the horizon;
//   * exactly-once, in-order app delivery — each pair's echo stream
//     arrives complete, once, in order, despite duplicated and reordered
//     frames (per-sender sequence window) and flipped bits (CRC-32 frame
//     checksum: corrupt frames are dropped and retransmitted, never
//     delivered);
//   * protocol shape — the TraceAuditor replays the run's spans clean;
//   * the adversary actually fired — every armed axis's injection counter
//     is positive, so a cell can never pass vacuously.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "gs/scheduler.hpp"
#include "mpvm/mpvm.hpp"
#include "obs/audit.hpp"

namespace cpe {
namespace {

using pvm::Task;
using pvm::Tid;

enum class Chaos { kDuplicate, kReorder, kCorrupt, kDrop, kAll };

std::string chaos_name(Chaos c) {
  switch (c) {
    case Chaos::kDuplicate: return "Duplicate";
    case Chaos::kReorder: return "Reorder";
    case Chaos::kCorrupt: return "Corrupt";
    case Chaos::kDrop: return "Drop";
    case Chaos::kAll: return "All";
  }
  return "?";
}

net::AdversaryParams adversary_for(Chaos c) {
  switch (c) {
    case Chaos::kDuplicate:
      return {.duplicate_probability = 0.3};
    case Chaos::kReorder:
      return {.reorder_probability = 0.3, .reorder_horizon = 0.05};
    case Chaos::kCorrupt:
      return {.corrupt_probability = 0.05};
    case Chaos::kDrop:
      return {};  // plain loss: no adversary knob, see set_loss_probability
    case Chaos::kAll:
      return {.duplicate_probability = 0.2,
              .reorder_probability = 0.2,
              .reorder_horizon = 0.05,
              .corrupt_probability = 0.03,
              .burst_probability = 0.05,
              .burst_delay = 0.05};
  }
  return {};
}

class AdversarialNetworkSweep
    : public ::testing::TestWithParam<std::tuple<int, Chaos>> {};

TEST_P(AdversarialNetworkSweep, DrainsExactlyOnceUnderChaos) {
  const auto [k, chaos] = GetParam();
  constexpr int kPairs = 4;    // 8 tasks on the drained host
  constexpr int kRounds = 20;  // ping-pong exchanges per pair
  constexpr double kHorizon = 150.0;

  sim::Engine eng;
  const std::uint64_t seed = 17'400 + static_cast<std::uint64_t>(k) * 10 +
                             static_cast<std::uint64_t>(chaos);
  net::Network net(eng, net::EthernetParams{}, net::DatagramParams{}, seed);
  os::Host src(eng, net, os::HostConfig("src", "HPPA", 1.0));
  std::vector<std::unique_ptr<os::Host>> dests;
  for (int i = 1; i <= 4; ++i)
    dests.push_back(std::make_unique<os::Host>(
        eng, net, os::HostConfig("d" + std::to_string(i), "HPPA", 1.0)));
  pvm::PvmSystem vm(eng, net);
  vm.add_host(src);
  for (auto& d : dests) vm.add_host(*d);
  mpvm::Mpvm mpvm(vm);

  gs::GsPolicy policy;
  policy.max_concurrent_migrations = k;
  policy.migration_watchdog = 8.0;
  gs::GlobalScheduler gs(vm, policy);
  gs.attach(mpvm);

  // Each pair ping-pongs sequence numbers; both sides record what they
  // unpacked so exactly-once, in-order delivery is checked end to end.
  std::map<unsigned, std::vector<int>> got;  // inst -> seqs, arrival order
  vm.register_program("chatter", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 2'000'000;
    const std::uint32_t inst = t.tid().task_num();
    const bool initiator = (inst % 2) == 1;
    const Tid peer = Tid::make(0, initiator ? inst + 1 : inst - 1);
    co_await sim::Delay(eng, 5.0);  // wait for the whole worknet to enroll
    for (int i = 0; i < kRounds; ++i) {
      if (initiator) {
        t.initsend().pk_int(i);
        co_await t.send(peer, 11);
        co_await t.recv(pvm::kAny, 12);
        got[inst].push_back(t.rbuf().upk_int());
      } else {
        co_await t.recv(pvm::kAny, 11);
        const int seq = t.rbuf().upk_int();
        got[inst].push_back(seq);
        t.initsend().pk_int(seq);
        co_await t.send(peer, 12);
      }
      co_await t.compute(0.5);  // keep chatting across the whole drain
    }
  });

  // Arm after the spawn RPCs finish (~3 s) but before any chatter or
  // migration traffic: the whole drain runs on the hostile fabric.
  const bool lossy = chaos == Chaos::kDrop || chaos == Chaos::kAll;
  eng.schedule_at(4.5, [&net, chaos, lossy] {
    net.set_adversary(adversary_for(chaos));
    if (lossy) net.datagrams().set_loss_probability(0.05);
  });

  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("chatter", 2 * kPairs, "src");
    co_await sim::Delay(eng, 5.0 - eng.now());
    os::OwnerEvent ev(eng.now(), src, os::OwnerAction::kReclaim, 1);
    gs.on_owner_event(ev);
  };
  sim::spawn(eng, driver());
  gs.start_heartbeat(kHorizon);
  eng.run_until(kHorizon);

  const std::string cell =
      "k=" + std::to_string(k) + " chaos=" + chaos_name(chaos);

  // No deadlock, no task loss: every chatter ran to completion.
  EXPECT_EQ(vm.live_task_count(), 0u) << cell << ": tasks blocked at horizon";

  // Exactly-once, in-order: both directions of every pair saw the full
  // sequence once, in order, whatever the fabric did to the frames.
  ASSERT_EQ(got.size(), static_cast<std::size_t>(2 * kPairs)) << cell;
  for (const auto& [inst, seqs] : got) {
    ASSERT_EQ(seqs.size(), static_cast<std::size_t>(kRounds))
        << "t0." << inst << " (" << cell << ")";
    for (int i = 0; i < kRounds; ++i)
      EXPECT_EQ(seqs[static_cast<std::size_t>(i)], i)
          << "t0." << inst << " (" << cell << ")";
  }

  // The adversary fired on every armed axis: no vacuous cells.
  const net::DatagramService& dg = net.datagrams();
  if (chaos == Chaos::kDuplicate || chaos == Chaos::kAll) {
    EXPECT_GT(dg.duplicates_injected(), 0u) << cell;
  }
  if (chaos == Chaos::kReorder || chaos == Chaos::kAll) {
    EXPECT_GT(dg.reorders_injected(), 0u) << cell;
  }
  if (chaos == Chaos::kCorrupt || chaos == Chaos::kAll) {
    EXPECT_GT(dg.corrupt_injected(), 0u) << cell;
    // The CRC caught every flip on the datagram path: nothing garbled
    // reached a task.
    EXPECT_EQ(dg.corrupt_delivered(), 0u) << cell;
  }
  if (chaos == Chaos::kAll) {
    EXPECT_GT(dg.bursts_injected(), 0u) << cell;
  }
  if (lossy) {
    EXPECT_GT(dg.drops_total(), 0u) << cell;
  }

  // The drain really moved tasks — chaos or not, the cell is not vacuous.
  EXPECT_GE(mpvm.history().size(), 1u) << cell;

  // Every admitted stream resolved (released or reaped): nothing leaks.
  EXPECT_EQ(gs.admission().active(), 0u) << cell;

  // Protocol shape + fencing survive the chaos: the auditor replays clean.
  const obs::TraceAuditor auditor(vm.spans());
  EXPECT_TRUE(auditor.ok()) << cell << "\n"
                            << obs::TraceAuditor::format(auditor.audit());
}

INSTANTIATE_TEST_SUITE_P(
    KByChaos, AdversarialNetworkSweep,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(Chaos::kDuplicate, Chaos::kReorder,
                                         Chaos::kCorrupt, Chaos::kDrop,
                                         Chaos::kAll)),
    [](const ::testing::TestParamInfo<std::tuple<int, Chaos>>& p) {
      return "K" + std::to_string(std::get<0>(p.param)) +
             chaos_name(std::get<1>(p.param));
    });

}  // namespace
}  // namespace cpe
