// Property suites for the load subsystem (DESIGN.md §11):
//
//   * Threshold compatibility — across seeded random worknet snapshots, the
//     placement-engine Threshold policy reproduces the pre-engine Global
//     Scheduler monitor decision-for-decision (same victims, same
//     destinations, same order).
//   * No ping-pong — under *constant* external load, every index policy
//     settles: the anti-thrash hysteresis admits zero residency violations
//     and no unit oscillates between hosts.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "gs/scheduler.hpp"
#include "mpvm/mpvm.hpp"
#include "sim/random.hpp"

namespace cpe {
namespace {

// ---------------------------------------------------------------------------
// Property: Threshold == the legacy monitor, on random snapshots.
// ---------------------------------------------------------------------------

/// The pre-placement-engine monitor body, transcribed: scan hosts in order,
/// trigger on live load, rank destinations by load() + external_jobs(),
/// keep the "+1.0 lighter" guard.  The policy under test must match this
/// action-for-action.
std::vector<load::PlacementAction> legacy_reference(
    const std::vector<load::HostLoadView>& views, double threshold) {
  std::vector<load::PlacementAction> out;
  for (const load::HostLoadView& v : views) {
    if (!v.up) continue;
    if (v.instant <= threshold) continue;
    const load::HostLoadView* best = nullptr;
    for (const load::HostLoadView& w : views) {
      if (w.host == v.host || !w.up || !w.eligible) continue;
      if (!v.host->migration_compatible_with(*w.host)) continue;
      if (best == nullptr || w.dest_rank < best->dest_rank) best = &w;
    }
    if (best == nullptr || best->instant + 1.0 >= v.instant) continue;
    out.emplace_back(v.host, best->host, v.instant, best->instant);
  }
  return out;
}

class ThresholdEquivalenceSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThresholdEquivalenceSweep, MatchesTheLegacyMonitorDecisionForDecision) {
  sim::Engine eng;
  net::Network net(eng);
  std::vector<std::unique_ptr<os::Host>> hosts;
  for (int i = 0; i < 8; ++i)
    hosts.push_back(std::make_unique<os::Host>(
        eng, net,
        os::HostConfig("h" + std::to_string(i), i < 6 ? "HPPA" : "SPARC",
                       1.0)));

  sim::Rng rng(GetParam());
  load::PlacementEngine engine(load::PolicyKind::kThreshold);
  for (int round = 0; round < 200; ++round) {
    const double threshold = rng.uniform(0.5, 4.0);
    std::vector<load::HostLoadView> views;
    for (auto& h : hosts) {
      const double instant = rng.uniform(0.0, 6.0);
      // The legacy dest rank double-counts external jobs; model that with
      // an independent additive term.
      const double dest_rank = instant + rng.uniform(0.0, 2.0);
      views.emplace_back(h.get(), instant, dest_rank, instant,
                         /*age=*/0.0, /*movable=*/1, /*up=*/!rng.chance(0.2),
                         /*eligible=*/!rng.chance(0.2));
    }
    load::PlacementParams p;
    p.load_threshold = threshold;
    const auto got = engine.decide(views, p);
    const auto want = legacy_reference(views, threshold);
    ASSERT_EQ(got.size(), want.size()) << "round " << round;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].from, want[i].from) << "round " << round;
      EXPECT_EQ(got[i].to, want[i].to) << "round " << round;
      EXPECT_DOUBLE_EQ(got[i].from_load, want[i].from_load);
      EXPECT_DOUBLE_EQ(got[i].to_load, want[i].to_load);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThresholdEquivalenceSweep,
                         ::testing::Values(1u, 7u, 42u, 1337u));

// ---------------------------------------------------------------------------
// Property: no ping-pong under constant load, for every index policy.
// ---------------------------------------------------------------------------

class NoPingPongSweep
    : public ::testing::TestWithParam<std::tuple<load::PolicyKind, unsigned>> {
};

TEST_P(NoPingPongSweep, ConstantLoadSettlesWithoutThrash) {
  const auto [kind, seed] = GetParam();
  sim::Engine eng;
  net::Network net(eng);
  os::Host h1(eng, net, os::HostConfig("h1", "HPPA", 1.0));
  os::Host h2(eng, net, os::HostConfig("h2", "HPPA", 1.0));
  os::Host h3(eng, net, os::HostConfig("h3", "HPPA", 1.0));
  os::Host h4(eng, net, os::HostConfig("h4", "HPPA", 1.0));
  pvm::PvmSystem vm(eng, net);
  for (os::Host* h : {&h1, &h2, &h3, &h4}) vm.add_host(*h);
  mpvm::Mpvm mpvm(vm);

  gs::GsPolicy policy;
  policy.placement = kind;
  policy.poll_interval = 1.0;
  policy.min_residency = 5.0;
  policy.placement_seed = seed;
  if (kind == load::PolicyKind::kBestFit) policy.load_threshold = 2.0;
  gs::GlobalScheduler gs(vm, policy);
  gs.attach(mpvm);
  load::LoadExchange exchange(vm, [&] {
    load::ExchangePolicy xp;
    xp.seed = seed;
    return xp;
  }());
  gs.attach(exchange, h1);

  vm.register_program("worker", [&](pvm::Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 10'000;
    co_await t.compute(200.0);
  });
  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("worker", 4, "h1");
    // Constant external load from t=0 on: nothing changes after this.
    h1.cpu().set_external_jobs(4);
  };
  sim::spawn(eng, driver());
  exchange.start(120.0);
  gs.start_monitoring(120.0);
  eng.run_until(120.0);

  // Hysteresis held: no unit moved twice inside its residency window.
  EXPECT_EQ(gs.placement().thrash_violations(), 0u);
  // And no oscillation: with the load constant, each task relocates at
  // most a handful of times over two simulated minutes, rather than
  // bouncing every poll tick.
  std::map<std::int32_t, int> moves;
  for (const mpvm::MigrationStats& m : mpvm.history())
    if (m.ok) ++moves[m.task.raw()];
  for (const auto& [tid, n] : moves)
    EXPECT_LE(n, 3) << "task " << tid << " ping-ponged " << n << " moves";
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, NoPingPongSweep,
    ::testing::Combine(::testing::Values(load::PolicyKind::kBestFit,
                                         load::PolicyKind::kDestinationSwap,
                                         load::PolicyKind::kWorkSteal),
                       ::testing::Values(1u, 7u, 42u)));

}  // namespace
}  // namespace cpe
