// Replicated GS, failover semantics: the ISSUE acceptance scenario (leader
// crash mid-migration, takeover within three heartbeats, the in-flight
// vacate driven to completion exactly once), the split-brain partition
// variant, and the fencing of a deposed leader's stale-epoch commands.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "gs/ha.hpp"

namespace cpe::gs {
namespace {

using pvm::Task;

/// Three compatible worker hosts plus three dedicated machines for the GS
/// replicas (kept out of the VM so they are never migration destinations).
struct HaWorknet {
  sim::Engine eng;
  net::Network net{eng};
  os::Host host1{eng, net, os::HostConfig("host1", "HPPA", 1.0)};
  os::Host host2{eng, net, os::HostConfig("host2", "HPPA", 1.0)};
  os::Host host3{eng, net, os::HostConfig("host3", "HPPA", 1.0)};
  os::Host gs1{eng, net, os::HostConfig("gs1", "HPPA", 1.0)};
  os::Host gs2{eng, net, os::HostConfig("gs2", "HPPA", 1.0)};
  os::Host gs3{eng, net, os::HostConfig("gs3", "HPPA", 1.0)};
  pvm::PvmSystem vm{eng, net};
  mpvm::Mpvm mpvm{vm};
  fault::FaultPlan plan{eng};

  HaWorknet() {
    vm.add_host(host1);
    vm.add_host(host2);
    vm.add_host(host3);
  }

  [[nodiscard]] std::vector<os::Host*> gs_hosts() {
    return {&gs1, &gs2, &gs3};
  }
};

std::size_t find_entry(const std::vector<Decision>& journal,
                       const std::string& needle, std::size_t from = 0) {
  for (std::size_t i = from; i < journal.size(); ++i)
    if (journal[i].what.find(needle) != std::string::npos) return i;
  return journal.size();
}

/// No tid ever appears more than once in the migration history.
void expect_no_double_migration(const mpvm::Mpvm& m) {
  std::unordered_map<std::int32_t, int> per_task;
  for (const mpvm::MigrationStats& h : m.history())
    ++per_task[h.task.raw()];
  for (const auto& [tid, n] : per_task)
    EXPECT_LE(n, 1) << "task " << tid << " migrated " << n << " times";
}

// The ISSUE acceptance scenario: the leader orders host1 vacated, its own
// host crashes while the state transfer is still on the wire, and the
// cluster must (a) elect a new leader within 3 heartbeat intervals, (b) have
// the new leader pick up the replicated open vacate, and (c) complete the
// migration exactly once.
TEST(HaFailover, LeaderCrashMidMigrationElectsAndCompletesTheVacate) {
  HaWorknet w;
  HaScheduler ha(w.vm, w.gs_hosts());
  ha.attach(w.mpvm);
  ha.start(60.0);
  std::string final_host;
  double finished = -1;
  w.vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 5'000'000;  // several seconds on the wire
    co_await t.compute(30.0);
    finished = w.eng.now();
    final_host = t.pvmd().host().name();
  });
  auto driver = [&]() -> sim::Proc {
    co_await w.vm.spawn("worker", 1, "host1");
    co_await sim::Delay(w.eng, 1.0);
    ha.on_owner_event(
        os::OwnerEvent(w.eng.now(), w.host1, os::OwnerAction::kReclaim, 1));
  };
  sim::spawn(w.eng, driver());
  w.plan.crash_at(w.gs1, 1.5);  // mid-transfer
  w.eng.run();

  const auto& ch = ha.leadership_changes();
  ASSERT_EQ(ch.size(), 2u);
  EXPECT_GT(ch[1].t, 1.5);
  EXPECT_LE(ch[1].t - 1.5, 3.0 * ha.policy().heartbeat_interval);
  // The open vacate rode the replicated state onto the new leader...
  EXPECT_LT(find_entry(ha.journal(), "failover: resuming vacate of host1"),
            ha.journal().size());
  // ...which rode out the in-flight migration instead of starting a second
  // one: the task moved exactly once and the reclaim was honoured.
  ASSERT_EQ(w.mpvm.history().size(), 1u);
  expect_no_double_migration(w.mpvm);
  EXPECT_NE(final_host, "host1");
  EXPECT_GT(finished, 30.0);
  // The dead leader's command was legitimately epoch-1 (admitted before the
  // takeover); nothing ever ran with a stale epoch.
  EXPECT_EQ(ha.fence()->floor(), 2u);
  EXPECT_EQ(ha.fence()->rejected(), 0u);
  EXPECT_EQ(w.vm.live_task_count(), 0u);
  // The typed decision fields crossed the replication wire intact: the old
  // leader's reclaim entry arrives at the new leader with its reason and
  // the load snapshot of the host that triggered it, not just the text.
  const std::size_t reclaim =
      find_entry(ha.journal(), "owner reclaimed host1");
  ASSERT_LT(reclaim, ha.journal().size());
  EXPECT_EQ(ha.journal()[reclaim].reason, DecisionReason::kReclaim);
  EXPECT_GT(ha.journal()[reclaim].load, 0.0);  // one runnable task
}

// Split-brain: the leader is partitioned into a minority island together
// with worker host1.  The majority side must elect (the minority cannot),
// the old leader must stand down on lease loss, commands during the split
// must be handled by the majority leader, and the healed cluster must
// converge on exactly one leader with strictly increasing terms throughout.
TEST(HaFailover, SplitBrainMajorityElectsAndMinorityStandsDown) {
  HaWorknet w;
  HaScheduler ha(w.vm, w.gs_hosts());
  ha.attach(w.mpvm);
  ha.start(40.0);
  std::string final_host;
  double finished = -1;
  w.vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 100'000;
    co_await t.compute(20.0);
    finished = w.eng.now();
    final_host = t.pvmd().host().name();
  });
  auto driver = [&]() -> sim::Proc {
    co_await w.vm.spawn("worker", 1, "host2");  // majority side
  };
  sim::spawn(w.eng, driver());
  std::vector<os::Host*> island{&w.gs1, &w.host1};
  w.plan.partition_window(w.net.ethernet(), island, 2.0, 6.0);
  // Mid-partition, the owner reclaims host2: only the majority leader can
  // hear it and act.
  w.plan.trigger_at(4.5, "owner reclaims host2", [&] {
    ha.on_owner_event(
        os::OwnerEvent(w.eng.now(), w.host2, os::OwnerAction::kReclaim, 1));
  });
  ReplicaRole minority_role_mid = ReplicaRole::kLeader;
  int leader_mid = -1;
  w.plan.trigger_at(6.5, "probe roles", [&] {
    minority_role_mid = ha.replica(0).role();
    leader_mid = ha.leader_id();
  });
  w.eng.run();

  const auto& ch = ha.leadership_changes();
  ASSERT_GE(ch.size(), 2u);
  // Majority elected promptly; the minority island never won an election
  // while the network was split.
  EXPECT_NE(ch[1].replica, 0);
  EXPECT_LE(ch[1].t - 2.0, 3.0 * ha.policy().heartbeat_interval);
  for (const auto& c : ch) {
    if (c.t > 2.0 && c.t < 8.0) {
      EXPECT_NE(c.replica, 0);
    }
  }
  // The deposed leader noticed its lease lapse and stood down on its own.
  EXPECT_NE(minority_role_mid, ReplicaRole::kLeader);
  EXPECT_TRUE(leader_mid == 1 || leader_mid == 2);
  // Terms only ever move forward.
  for (std::size_t i = 1; i < ch.size(); ++i)
    EXPECT_GT(ch[i].term, ch[i - 1].term);
  // The majority leader handled the reclaim: it first tried host1 (least
  // loaded but cut off), shunned it, and retried onto host3.
  EXPECT_LT(find_entry(ha.journal(), "blacklisting host1"),
            ha.journal().size());
  EXPECT_NE(final_host, "host2");
  EXPECT_NE(final_host, "host1");
  expect_no_double_migration(w.mpvm);
  ASSERT_EQ(w.mpvm.history().size(), 1u);
  // After the heal: exactly one live leader, and the fence floor tracks the
  // last elected term (no stale-epoch command can ever have executed).
  int leaders = 0;
  for (int i = 0; i < ha.size(); ++i)
    if (ha.replica(i).host().up() &&
        ha.replica(i).role() == ReplicaRole::kLeader)
      ++leaders;
  EXPECT_EQ(leaders, 1);
  EXPECT_EQ(ha.fence()->floor(), ch.back().term);
  EXPECT_GT(finished, 20.0);
  EXPECT_EQ(w.vm.live_task_count(), 0u);
}

// The fencing token as the last line of defence: a deposed leader that
// still believes it is in charge gets its migration commands bounced by the
// subsystems, not merely ignored by the election layer.
TEST(HaFailover, DeposedLeaderCommandsAreFencedNotExecuted) {
  HaWorknet w;
  HaScheduler ha(w.vm, w.gs_hosts());
  ha.attach(w.mpvm);
  ha.start(60.0);
  std::string final_host;
  w.vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 100'000;
    co_await t.compute(30.0);
    final_host = t.pvmd().host().name();
  });
  auto driver = [&]() -> sim::Proc {
    co_await w.vm.spawn("worker", 1, "host1");
  };
  sim::spawn(w.eng, driver());
  w.plan.crash_at(w.gs1, 2.0);
  w.eng.run_until(8.0);
  ASSERT_EQ(ha.leadership_changes().size(), 2u);
  ASSERT_EQ(ha.fence()->floor(), 2u);

  // Reopen the deposed-leader window deterministically: replica 0 died as
  // the term-1 leader; pin its core back into the acting state it crashed
  // in (as if it had not yet noticed the new term) and hand it an owner
  // event.  In a live cluster this window is the gap between the new
  // leader's election and the old leader's lease expiry; the fence — not
  // timing luck — is what must close it.
  GlobalScheduler& stale = ha.replica(0).core();
  stale.set_active(true);
  stale.on_owner_event(
      os::OwnerEvent(w.eng.now(), w.host1, os::OwnerAction::kReclaim, 1));
  w.eng.run_until(9.0);
  stale.set_active(false);

  // The stale epoch-1 migrate bounced off the floor of 2 and moved nothing.
  EXPECT_EQ(ha.fence()->rejected(), 1u);
  EXPECT_TRUE(w.mpvm.history().empty());
  EXPECT_LT(find_entry(stale.journal(), "fenced: stale epoch"),
            stale.journal().size());

  // The real leader's identical command goes through.
  ha.on_owner_event(
      os::OwnerEvent(w.eng.now(), w.host1, os::OwnerAction::kReclaim, 1));
  w.eng.run();
  ASSERT_EQ(w.mpvm.history().size(), 1u);
  expect_no_double_migration(w.mpvm);
  EXPECT_NE(final_host, "host1");
  EXPECT_GE(ha.fence()->admitted(), 1u);
  EXPECT_EQ(ha.fence()->rejected(), 1u);  // still just the one stale attempt
  EXPECT_EQ(w.vm.live_task_count(), 0u);
}

}  // namespace
}  // namespace cpe::gs
