// Replicated GS, election mechanics: bootstrap leadership, stability under
// no faults, single-replica degenerate deployment, takeover latency after a
// leader crash, rejoin-as-follower, and state replication to followers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "gs/ha.hpp"

namespace cpe::gs {
namespace {

using pvm::Task;

/// Three compatible worker hosts plus three dedicated machines for the GS
/// replicas (kept out of the VM so they are never migration destinations).
struct HaWorknet {
  sim::Engine eng;
  net::Network net{eng};
  os::Host host1{eng, net, os::HostConfig("host1", "HPPA", 1.0)};
  os::Host host2{eng, net, os::HostConfig("host2", "HPPA", 1.0)};
  os::Host host3{eng, net, os::HostConfig("host3", "HPPA", 1.0)};
  os::Host gs1{eng, net, os::HostConfig("gs1", "HPPA", 1.0)};
  os::Host gs2{eng, net, os::HostConfig("gs2", "HPPA", 1.0)};
  os::Host gs3{eng, net, os::HostConfig("gs3", "HPPA", 1.0)};
  pvm::PvmSystem vm{eng, net};
  mpvm::Mpvm mpvm{vm};
  fault::FaultPlan plan{eng};

  HaWorknet() {
    vm.add_host(host1);
    vm.add_host(host2);
    vm.add_host(host3);
  }

  [[nodiscard]] std::vector<os::Host*> gs_hosts() {
    return {&gs1, &gs2, &gs3};
  }
};

std::size_t find_entry(const std::vector<Decision>& journal,
                       const std::string& needle, std::size_t from = 0) {
  for (std::size_t i = from; i < journal.size(); ++i)
    if (journal[i].what.find(needle) != std::string::npos) return i;
  return journal.size();
}

TEST(HaElection, BootstrapLeaderIsReplicaZeroAndClusterIsStable) {
  HaWorknet w;
  HaScheduler ha(w.vm, w.gs_hosts());
  ha.start(30.0);
  w.eng.run_until(5.0);
  EXPECT_EQ(ha.leader_id(), 0);
  EXPECT_EQ(ha.replica(0).role(), ReplicaRole::kLeader);
  EXPECT_EQ(ha.replica(0).term(), 1u);
  EXPECT_EQ(ha.replica(1).role(), ReplicaRole::kFollower);
  EXPECT_EQ(ha.replica(2).role(), ReplicaRole::kFollower);
  // Followers adopted the leader's term from its heartbeats.
  EXPECT_EQ(ha.replica(1).term(), 1u);
  EXPECT_EQ(ha.replica(2).term(), 1u);
  w.eng.run();
  // A healthy cluster never re-elects: the bootstrap handover is the only
  // leadership change for the whole run.
  ASSERT_EQ(ha.leadership_changes().size(), 1u);
  EXPECT_EQ(ha.leadership_changes()[0].replica, 0);
  EXPECT_EQ(ha.leadership_changes()[0].term, 1u);
  EXPECT_EQ(ha.leader_id(), 0);
}

TEST(HaElection, SingleReplicaActsLikeThePlainScheduler) {
  HaWorknet w;
  HaScheduler ha(w.vm, {&w.gs1});
  ha.attach(w.mpvm);
  ha.start(40.0);
  std::string final_host;
  double finished = -1;
  w.vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 100'000;
    co_await t.compute(20.0);
    finished = w.eng.now();
    final_host = t.pvmd().host().name();
  });
  auto driver = [&]() -> sim::Proc {
    co_await w.vm.spawn("worker", 1, "host1");
    co_await sim::Delay(w.eng, 1.0);
    ha.on_owner_event(
        os::OwnerEvent(w.eng.now(), w.host1, os::OwnerAction::kReclaim, 1));
  };
  sim::spawn(w.eng, driver());
  w.eng.run();
  EXPECT_EQ(ha.size(), 1);
  EXPECT_EQ(ha.majority(), 1);
  EXPECT_EQ(ha.leader_id(), 0);  // elected itself at start
  // The vacate-on-reclaim policy holds exactly as with the plain GS.
  EXPECT_GT(finished, 20.0);
  EXPECT_NE(final_host, "host1");
  ASSERT_EQ(w.mpvm.history().size(), 1u);
  EXPECT_LT(find_entry(ha.journal(), "owner reclaimed host1"),
            ha.journal().size());
  // Every command carried epoch 1 and was admitted; nothing was fenced.
  EXPECT_EQ(ha.fence()->floor(), 1u);
  EXPECT_GE(ha.fence()->admitted(), 1u);
  EXPECT_EQ(ha.fence()->rejected(), 0u);
  EXPECT_EQ(w.vm.live_task_count(), 0u);
}

TEST(HaElection, StartupPartitionCannotElectASecondTermOneLeader) {
  // Replica 0 is partitioned away before its first heartbeat can land.
  // Every replica spent its bootstrap vote on replica 0 in term 1, so the
  // majority side cannot assemble a second term-1 leader: the challenger
  // must win term 2 — whose first command fences replica 0 out — and terms
  // never collide.
  HaWorknet w;
  HaScheduler ha(w.vm, w.gs_hosts());
  std::vector<os::Host*> island{&w.gs1};
  w.plan.partition_window(w.net.ethernet(), island, 0.0, 8.0);
  ha.start(20.0);
  w.eng.run();
  const auto& ch = ha.leadership_changes();
  ASSERT_GE(ch.size(), 2u);
  EXPECT_EQ(ch[0].term, 1u);
  EXPECT_EQ(ch[0].replica, 0);
  EXPECT_EQ(ch[1].term, 2u);
  EXPECT_NE(ch[1].replica, 0);
  for (std::size_t i = 1; i < ch.size(); ++i)
    EXPECT_GT(ch[i].term, ch[i - 1].term);
  EXPECT_EQ(ha.fence()->floor(), ch.back().term);
}

TEST(HaElection, FollowerTakesOverWithinThreeHeartbeatsOfLeaderCrash) {
  HaWorknet w;
  HaScheduler ha(w.vm, w.gs_hosts());
  ha.start(40.0);
  w.plan.crash_at(w.gs1, 5.0);
  w.eng.run();
  const auto& ch = ha.leadership_changes();
  ASSERT_EQ(ch.size(), 2u);  // bootstrap + exactly one takeover
  EXPECT_GT(ch[1].t, 5.0);
  // The ISSUE acceptance bound: a new leader within 3 heartbeat intervals.
  EXPECT_LE(ch[1].t - 5.0, 3.0 * ha.policy().heartbeat_interval);
  EXPECT_NE(ch[1].replica, 0);
  EXPECT_EQ(ch[1].term, 2u);
  EXPECT_EQ(ha.leader_id(), ch[1].replica);
}

TEST(HaElection, RecoveredOldLeaderRejoinsAsFollower) {
  HaWorknet w;
  HaScheduler ha(w.vm, w.gs_hosts());
  ha.start(40.0);
  w.plan.crash_at(w.gs1, 5.0);
  w.plan.recover_at(w.gs1, 10.0);
  w.eng.run();
  // The rejoin causes no churn: still just the bootstrap and the takeover.
  ASSERT_EQ(ha.leadership_changes().size(), 2u);
  const int leader = ha.leadership_changes()[1].replica;
  ASSERT_NE(leader, 0);
  EXPECT_EQ(ha.leader_id(), leader);
  EXPECT_EQ(ha.replica(0).role(), ReplicaRole::kFollower);
  // The rebooted replica caught up with the new term from the heartbeats.
  EXPECT_EQ(ha.replica(0).term(), ha.replica(leader).term());
}

TEST(HaElection, LeaderStateIsReplicatedToFollowers) {
  HaWorknet w;
  HaScheduler ha(w.vm, w.gs_hosts());
  ha.attach(w.mpvm);
  ha.start(30.0);
  w.vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 100'000;
    co_await t.compute(15.0);
  });
  auto driver = [&]() -> sim::Proc {
    co_await w.vm.spawn("worker", 1, "host1");
    co_await sim::Delay(w.eng, 1.0);
    ha.on_owner_event(
        os::OwnerEvent(w.eng.now(), w.host1, os::OwnerAction::kReclaim, 1));
  };
  sim::spawn(w.eng, driver());
  w.eng.run();
  const std::vector<Decision>& lead = ha.replica(0).core().journal();
  ASSERT_FALSE(lead.empty());
  // Every follower holds the leader's full journal, decision for decision.
  for (int i : {1, 2}) {
    const std::vector<Decision>& follower = ha.replica(i).core().journal();
    ASSERT_EQ(follower.size(), lead.size()) << "replica " << i;
    for (std::size_t k = 0; k < lead.size(); ++k) {
      EXPECT_EQ(follower[k].what, lead[k].what);
      EXPECT_EQ(follower[k].ok, lead[k].ok);
    }
    EXPECT_LT(find_entry(follower, "owner reclaimed host1"), follower.size());
  }
}

TEST(HaElection, DuplicatedVoteGrantsCannotForgeAMajority) {
  // Five replicas, majority three.  The bootstrap leader and two others
  // crash, leaving two survivors: one candidate plus one voter is only two
  // votes, so no leader must emerge — even though the fabric echoes every
  // datagram and a double-counted grant would fake the third vote.
  HaWorknet w;
  os::Host gs4{w.eng, w.net, os::HostConfig("gs4", "HPPA", 1.0)};
  os::Host gs5{w.eng, w.net, os::HostConfig("gs5", "HPPA", 1.0)};
  HaScheduler ha(w.vm, {&w.gs1, &w.gs2, &w.gs3, &gs4, &gs5});
  w.net.set_adversary({.duplicate_probability = 1.0});
  ha.start(20.0);
  w.plan.crash_at(w.gs1, 2.0);
  w.plan.crash_at(gs4, 2.0);
  w.plan.crash_at(gs5, 2.0);
  w.eng.run();
  EXPECT_GT(w.net.datagrams().duplicates_injected(), 0u);
  ASSERT_EQ(ha.leadership_changes().size(), 1u);  // bootstrap only
  EXPECT_EQ(ha.leadership_changes()[0].replica, 0);
  EXPECT_EQ(ha.leader_id(), -1);
  EXPECT_NE(ha.replica(1).role(), ReplicaRole::kLeader);
  EXPECT_NE(ha.replica(2).role(), ReplicaRole::kLeader);
}

TEST(HaElection, ElectionSurvivesDuplicationAndElectsExactlyOneLeader) {
  // The positive control for the vote-grant mask: with a full majority
  // alive, the duplicated fabric must not prevent (or double) leadership.
  HaWorknet w;
  HaScheduler ha(w.vm, w.gs_hosts());
  w.net.set_adversary({.duplicate_probability = 0.8});
  ha.start(30.0);
  w.plan.crash_at(w.gs1, 5.0);
  w.eng.run();
  EXPECT_GT(w.net.datagrams().duplicates_injected(), 0u);
  ASSERT_EQ(ha.leadership_changes().size(), 2u);  // bootstrap + takeover
  EXPECT_NE(ha.leadership_changes()[1].replica, 0);
  EXPECT_GT(ha.leadership_changes()[1].term, 1u);
  EXPECT_EQ(ha.leader_id(), ha.leadership_changes()[1].replica);
}

TEST(HaElection, ReplayedStateSnapshotsAreIdempotent) {
  // A duplicated heartbeat re-delivers the same durable-state snapshot;
  // importing it twice must not double-append journal entries.
  HaWorknet w;
  GlobalScheduler leader(w.vm);
  GlobalScheduler follower(w.vm);
  const os::OwnerEvent reclaim(0.0, w.host1, os::OwnerAction::kReclaim, 1);
  for (int i = 0; i < 4; ++i) leader.on_owner_event(reclaim);
  const GsDurableState full = leader.export_state();
  follower.import_state(full);
  follower.import_state(full);  // the echo
  EXPECT_EQ(follower.journal().size(), 4u);
  const GsDurableState suffix = leader.export_state(2);
  follower.import_state(suffix);
  follower.import_state(suffix);  // the echo
  ASSERT_EQ(follower.journal().size(), 4u);
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_EQ(follower.journal()[k].what, leader.journal()[k].what);
}

TEST(HaElection, JournalReplicatesIncrementallyAndHealsGaps) {
  // The durable-state snapshot carries only the journal suffix past the
  // requested base; a follower splices it at the base, and a gapped suffix
  // (base beyond what the follower holds) is skipped rather than applied —
  // the follower's next ack makes the leader resend from its real length.
  HaWorknet w;
  GlobalScheduler leader(w.vm);
  GlobalScheduler follower(w.vm);
  const os::OwnerEvent reclaim(0.0, w.host1, os::OwnerAction::kReclaim, 1);
  for (int i = 0; i < 3; ++i) leader.on_owner_event(reclaim);
  follower.import_state(leader.export_state());  // full-state bootstrap
  ASSERT_EQ(follower.journal().size(), 3u);

  for (int i = 0; i < 2; ++i) leader.on_owner_event(reclaim);
  const GsDurableState suffix = leader.export_state(3);
  EXPECT_EQ(suffix.journal_base, 3u);
  EXPECT_EQ(suffix.journal.size(), 2u);  // only what is new rides the wire
  follower.import_state(suffix);
  ASSERT_EQ(follower.journal().size(), 5u);
  for (std::size_t k = 0; k < 5; ++k)
    EXPECT_EQ(follower.journal()[k].what, leader.journal()[k].what);

  // A replica that never saw the earlier entries must not apply the suffix.
  GlobalScheduler fresh(w.vm);
  fresh.import_state(suffix);
  EXPECT_TRUE(fresh.journal().empty());
  fresh.import_state(leader.export_state());  // the healing full resend
  EXPECT_EQ(fresh.journal().size(), 5u);

  // A base past the end is clamped: never an out-of-range suffix.
  EXPECT_TRUE(leader.export_state(99).journal.empty());
  EXPECT_EQ(leader.export_state(99).journal_base, 5u);
}

}  // namespace
}  // namespace cpe::gs
