#include "gs/scheduler.hpp"

#include <gtest/gtest.h>

namespace cpe::gs {
namespace {

using pvm::Task;

struct GsEnv : ::testing::Test {
  sim::Engine eng;
  net::Network net{eng};
  os::Host host1{eng, net, os::HostConfig("host1", "HPPA", 1.0)};
  os::Host host2{eng, net, os::HostConfig("host2", "HPPA", 1.0)};
  os::Host host3{eng, net, os::HostConfig("host3", "HPPA", 1.0)};
  pvm::PvmSystem vm{eng, net};

  GsEnv() {
    vm.add_host(host1);
    vm.add_host(host2);
    vm.add_host(host3);
  }
};

TEST_F(GsEnv, PickDestinationPrefersLeastLoaded) {
  GlobalScheduler gs(vm);
  host2.cpu().set_external_jobs(3);
  EXPECT_EQ(gs.pick_destination(host1), &host3);
  host3.cpu().set_external_jobs(5);
  EXPECT_EQ(gs.pick_destination(host1), &host2);
}

TEST_F(GsEnv, PickDestinationHonorsCompatibility) {
  os::Host alien(eng, net, os::HostConfig("alien", "SPARC", 1.0));
  pvm::PvmSystem vm2(eng, net);
  os::Host a(eng, net, os::HostConfig("a", "HPPA", 1.0));
  vm2.add_host(a);
  vm2.add_host(alien);
  GlobalScheduler gs(vm2);
  // Only the SPARC box is available: no compatible destination for HPPA.
  EXPECT_EQ(gs.pick_destination(a), nullptr);
}

TEST_F(GsEnv, ReclaimVacatesAllTasksViaMpvm) {
  mpvm::Mpvm mpvm(vm);
  GlobalScheduler gs(vm);
  gs.attach(mpvm);
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 50'000;
    co_await t.compute(60.0);
  });
  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("worker", 2, "host1");
    co_await sim::Delay(eng, 5.0);
    os::OwnerEvent ev(eng.now(), host1, os::OwnerAction::kReclaim, 1);
    gs.on_owner_event(ev);
  };
  sim::spawn(eng, driver());
  eng.run_until(20.0);
  // Both tasks left host1.
  for (Task* t : vm.all_tasks())
    EXPECT_NE(&t->pvmd().host(), &host1) << t->tid().str();
  EXPECT_GE(gs.journal().size(), 3u);  // 1 reclaim note + 2 migrations
  EXPECT_EQ(mpvm.history().size(), 2u);
}

TEST_F(GsEnv, ArrivalDoesNotVacateUnlessPolicySaysSo) {
  mpvm::Mpvm mpvm(vm);
  GlobalScheduler gs(vm);  // default: vacate_on_arrival = false
  gs.attach(mpvm);
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    co_await t.compute(30.0);
  });
  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("worker", 1, "host1");
    co_await sim::Delay(eng, 2.0);
    os::OwnerEvent ev(eng.now(), host1, os::OwnerAction::kArrive, 1);
    gs.on_owner_event(ev);
  };
  sim::spawn(eng, driver());
  eng.run_until(10.0);
  EXPECT_EQ(mpvm.history().size(), 0u);
}

TEST_F(GsEnv, ScriptedOwnerDrivesSchedulerEndToEnd) {
  mpvm::Mpvm mpvm(vm);
  GlobalScheduler gs(vm);
  gs.attach(mpvm);
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 20'000;
    co_await t.compute(40.0);
  });
  os::ScriptedOwner owner(
      eng, {os::OwnerEvent(5.0, host1, os::OwnerAction::kReclaim, 1)});
  owner.set_observer(
      [&](const os::OwnerEvent& ev) { gs.on_owner_event(ev); });
  owner.start();
  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("worker", 1, "host1");
  };
  sim::spawn(eng, driver());
  eng.run_until(30.0);
  EXPECT_EQ(mpvm.history().size(), 1u);
  EXPECT_EQ(mpvm.history()[0].from_host, "host1");
}

TEST_F(GsEnv, LoadThresholdMonitorRebalances) {
  mpvm::Mpvm mpvm(vm);
  GsPolicy policy;
  policy.load_threshold = 2.5;
  policy.poll_interval = 1.0;
  GlobalScheduler gs(vm, policy);
  gs.attach(mpvm);
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 10'000;
    co_await t.compute(60.0);
  });
  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("worker", 1, "host1");
    co_await sim::Delay(eng, 3.0);
    host1.cpu().set_external_jobs(3);  // load jumps to 4
  };
  sim::spawn(eng, driver());
  gs.start_monitoring(40.0);
  eng.run_until(40.0);
  EXPECT_EQ(mpvm.history().size(), 1u);
  EXPECT_NE(mpvm.history()[0].to_host, "host1");
}

TEST_F(GsEnv, MonitorLeavesBalancedSystemAlone) {
  mpvm::Mpvm mpvm(vm);
  GsPolicy policy;
  policy.load_threshold = 2.5;
  policy.poll_interval = 1.0;
  GlobalScheduler gs(vm, policy);
  gs.attach(mpvm);
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    co_await t.compute(20.0);
  });
  auto driver = [&]() -> sim::Proc { co_await vm.spawn("worker", 3); };
  sim::spawn(eng, driver());
  gs.start_monitoring(30.0);
  eng.run_until(30.0);
  EXPECT_EQ(mpvm.history().size(), 0u);
}

TEST_F(GsEnv, ReclaimVacatesUlpsViaUpvm) {
  upvm::Upvm upvm(vm);
  GlobalScheduler gs(vm);
  gs.attach(upvm);
  sim::spawn(eng, upvm.start());
  eng.run();
  upvm.run_spmd(
      [](upvm::Ulp& u) -> sim::Co<void> {
        u.set_data_bytes(10'000);
        co_await u.compute(60.0);
      },
      6);  // host1: 0,3; host2: 1,4; host3: 2,5
  auto driver = [&]() -> sim::Proc {
    co_await sim::Delay(eng, 2.0);
    os::OwnerEvent ev(eng.now(), host1, os::OwnerAction::kReclaim, 1);
    gs.on_owner_event(ev);
  };
  sim::spawn(eng, driver());
  eng.run_until(30.0);
  for (int i = 0; i < upvm.nulps(); ++i)
    EXPECT_NE(&upvm.ulp(i)->host(), &host1) << "ULP" << i;
  EXPECT_EQ(upvm.history().size(), 2u);
}

TEST_F(GsEnv, ReclaimPostsAdmWithdrawAndDepartRejoins) {
  opt::AdmOptConfig cfg;
  cfg.opt.data_bytes = 60'000;
  cfg.opt.nslaves = 2;
  cfg.opt.iterations = 10;
  cfg.opt.real_math = false;
  cfg.opt.slave_hosts = {"host1", "host2"};
  cfg.chunk_items = 16;
  opt::AdmOpt app(vm, cfg);
  GlobalScheduler gs(vm);
  gs.attach(app);
  opt::OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(eng, driver());
  auto owner_script = [&]() -> sim::Proc {
    while (!app.slaves_are_ready()) co_await app.slaves_ready().wait();
    co_await sim::Delay(eng, 0.2);
    gs.on_owner_event(
        os::OwnerEvent(eng.now(), host1, os::OwnerAction::kReclaim, 1));
    co_await sim::Delay(eng, 1.5);
    gs.on_owner_event(
        os::OwnerEvent(eng.now(), host1, os::OwnerAction::kDepart, 1));
  };
  sim::spawn(eng, owner_script());
  eng.run();
  EXPECT_EQ(r.iterations_done, 10);
  EXPECT_EQ(app.final_data_checksum(), r.data_checksum);
  ASSERT_EQ(app.redistributions().size(), 2u);
  EXPECT_EQ(app.redistributions()[0].kind, adm::AdmEventKind::kWithdraw);
  EXPECT_EQ(app.redistributions()[1].kind, adm::AdmEventKind::kRejoin);
}

TEST_F(GsEnv, PolicyValidationRejectsBadKnobsAtConstruction) {
  const auto construct = [&](const GsPolicy& p) { GlobalScheduler gs(vm, p); };
  GsPolicy p;
  p.poll_interval = 0;
  EXPECT_THROW(construct(p), ContractError);
  p = GsPolicy{};
  p.heartbeat_interval = -1.0;
  EXPECT_THROW(construct(p), ContractError);
  p = GsPolicy{};
  p.load_threshold = -2.0;
  EXPECT_THROW(construct(p), ContractError);
  p = GsPolicy{};
  p.load_threshold = std::nan("");
  EXPECT_THROW(construct(p), ContractError);
  p = GsPolicy{};
  p.max_migration_retries = 0;
  EXPECT_THROW(construct(p), ContractError);
  p = GsPolicy{};
  p.improvement_margin = -0.1;
  EXPECT_THROW(construct(p), ContractError);
  p = GsPolicy{};
  p.staleness_bound = 0;
  EXPECT_THROW(construct(p), ContractError);
  // The defaults (and an explicit infinity threshold) are valid.
  EXPECT_NO_THROW(construct(GsPolicy{}));
}

TEST_F(GsEnv, JournalCarriesTypedReasonsAndLoadSnapshots) {
  mpvm::Mpvm mpvm(vm);
  GsPolicy policy;
  policy.load_threshold = 2.5;
  policy.poll_interval = 1.0;
  GlobalScheduler gs(vm, policy);
  gs.attach(mpvm);
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 10'000;
    co_await t.compute(60.0);
  });
  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("worker", 1, "host1");
    co_await sim::Delay(eng, 3.0);
    host1.cpu().set_external_jobs(3);
    co_await sim::Delay(eng, 10.0);
    gs.on_owner_event(
        os::OwnerEvent(eng.now(), host2, os::OwnerAction::kReclaim, 1));
  };
  sim::spawn(eng, driver());
  gs.start_monitoring(12.0);
  eng.run_until(40.0);
  bool saw_overload = false, saw_reclaim = false;
  for (const Decision& d : gs.journal()) {
    if (d.reason == DecisionReason::kOverload) {
      saw_overload = true;
      EXPECT_GT(d.load, 2.5);  // the load that tripped the threshold
      EXPECT_NE(d.what.find("exceeds threshold"), std::string::npos);
    }
    if (d.reason == DecisionReason::kReclaim) saw_reclaim = true;
  }
  EXPECT_TRUE(saw_overload);
  EXPECT_TRUE(saw_reclaim);
  // The per-reason counter matches the journal.
  EXPECT_GT(vm.metrics().counter("gs.decisions.reason.overload").value(), 0u);
}

TEST_F(GsEnv, BestFitRebalancesFromTheGossipedMap) {
  mpvm::Mpvm mpvm(vm);
  GsPolicy policy;
  policy.placement = load::PolicyKind::kBestFit;
  policy.poll_interval = 1.0;
  policy.min_residency = 2.0;
  GlobalScheduler gs(vm, policy);
  gs.attach(mpvm);
  load::LoadExchange exchange(vm);
  gs.attach(exchange, host3);  // the GS "runs on" host3's partial map
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 10'000;
    co_await t.compute(120.0);
  });
  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("worker", 1, "host1");
    host1.cpu().set_external_jobs(4);
  };
  sim::spawn(eng, driver());
  exchange.start(60.0);
  gs.start_monitoring(60.0);
  eng.run_until(60.0);
  ASSERT_GE(mpvm.history().size(), 1u);
  EXPECT_EQ(mpvm.history()[0].from_host, "host1");
  bool saw_rebalance = false;
  for (const Decision& d : gs.journal()) {
    if (d.reason == DecisionReason::kRebalance) {
      saw_rebalance = true;
      EXPECT_NE(d.what.find("best_fit"), std::string::npos);
      EXPECT_GT(d.load, 0.0);
    }
  }
  EXPECT_TRUE(saw_rebalance);
  EXPECT_EQ(gs.placement().thrash_violations(), 0u);
}

TEST_F(GsEnv, ThresholdJournalTextIsByteIdenticalToTheLegacyFormat) {
  mpvm::Mpvm mpvm(vm);
  GsPolicy policy;
  policy.load_threshold = 2.5;
  policy.poll_interval = 1.0;
  GlobalScheduler gs(vm, policy);
  gs.attach(mpvm);
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 10'000;
    co_await t.compute(60.0);
  });
  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("worker", 1, "host1");
    co_await sim::Delay(eng, 3.0);
    host1.cpu().set_external_jobs(3);
  };
  sim::spawn(eng, driver());
  gs.start_monitoring(10.0);
  eng.run_until(40.0);
  bool found = false;
  for (const Decision& d : gs.journal()) {
    if (d.reason != DecisionReason::kOverload) continue;
    found = true;
    // The exact pre-placement-engine string, std::to_string and all.
    EXPECT_EQ(d.what, "load " + std::to_string(d.load) +
                          " on host1 exceeds threshold: rebalancing");
  }
  EXPECT_TRUE(found);
}

TEST_F(GsEnv, ConcurrentVacateFansOutAcrossPairLanes) {
  mpvm::Mpvm mpvm(vm);
  GsPolicy policy;
  policy.max_concurrent_migrations = 2;
  GlobalScheduler gs(vm, policy);
  gs.attach(mpvm);
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 50'000;
    co_await t.compute(60.0);
  });
  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("worker", 2, "host1");
    co_await sim::Delay(eng, 5.0);
    os::OwnerEvent ev(eng.now(), host1, os::OwnerAction::kReclaim, 1);
    gs.on_owner_event(ev);
  };
  sim::spawn(eng, driver());
  eng.run_until(30.0);
  // Both tasks left, and the per-pair lane rule forced the two concurrent
  // streams onto distinct destinations instead of piling onto host2.
  ASSERT_EQ(mpvm.history().size(), 2u);
  EXPECT_TRUE(mpvm.history()[0].ok);
  EXPECT_TRUE(mpvm.history()[1].ok);
  EXPECT_NE(mpvm.history()[0].to_host, mpvm.history()[1].to_host);
  EXPECT_EQ(gs.admission().active(), 0u);  // every ticket released
}

TEST_F(GsEnv, VacateWaitsForAnAdmissionSlotWhenBudgetIsOne) {
  mpvm::Mpvm mpvm(vm);
  GsPolicy policy;
  policy.max_concurrent_migrations = 1;
  GlobalScheduler gs(vm, policy);
  gs.attach(mpvm);
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 50'000;
    co_await t.compute(60.0);
  });
  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("worker", 2, "host1");
    co_await sim::Delay(eng, 5.0);
    os::OwnerEvent ev(eng.now(), host1, os::OwnerAction::kReclaim, 1);
    gs.on_owner_event(ev);
  };
  sim::spawn(eng, driver());
  eng.run_until(30.0);
  // The second vacate driver had to wait for the first ticket to free up,
  // but the host still drains completely: admission delays, never deadlocks.
  ASSERT_EQ(mpvm.history().size(), 2u);
  EXPECT_GE(vm.metrics().counter("gs.migration.admission_waits").value(), 1u);
  for (Task* t : vm.all_tasks())
    EXPECT_NE(&t->pvmd().host(), &host1) << t->tid().str();
  EXPECT_EQ(gs.admission().active(), 0u);
}

TEST_F(GsEnv, WatchdogAbortsStalledMigrationAndTaskSurvives) {
  mpvm::Mpvm mpvm(vm);
  GsPolicy policy;
  policy.migration_watchdog = 2.0;   // transfer below takes far longer
  policy.max_migration_retries = 1;  // give up after the aborted attempt
  GlobalScheduler gs(vm, policy);
  gs.attach(mpvm);
  vm.register_program("fat", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 30'000'000;
    co_await t.compute(60.0);
  });
  auto driver = [&]() -> sim::Proc {
    co_await vm.spawn("fat", 1, "host1");
    co_await sim::Delay(eng, 2.0);
    os::OwnerEvent ev(eng.now(), host1, os::OwnerAction::kReclaim, 1);
    gs.on_owner_event(ev);
  };
  sim::spawn(eng, driver());
  gs.start_heartbeat(25.0);
  eng.run_until(25.0);
  // The watchdog fired, the migration rolled back, and the victim kept
  // running on its old host instead of being lost mid-transfer.
  EXPECT_GE(vm.metrics().counter("gs.migration.watchdog_aborts").value(), 1u);
  ASSERT_EQ(vm.all_tasks().size(), 1u);
  EXPECT_EQ(&vm.all_tasks()[0]->pvmd().host(), &host1);
  EXPECT_FALSE(mpvm.migrating(vm.all_tasks()[0]->tid()));
  EXPECT_EQ(gs.admission().active(), 0u);  // aborted stream's slot freed
}

TEST_F(GsEnv, InFlightMigrationsSurviveFailover) {
  GlobalScheduler gs1(vm);
  GlobalScheduler gs2(vm);
  const std::uint64_t ticket =
      gs1.admission().admit(42, "host1", "host2", eng.now());
  ASSERT_NE(ticket, 0u);
  GsDurableState s = gs1.export_state();
  ASSERT_EQ(s.in_flight_migrations.size(), 1u);
  // A failover successor adopts the stream: it counts against the budget and
  // holds the pair lane, so the new leader cannot over-admit onto the pair.
  gs2.import_state(s);
  EXPECT_EQ(gs2.admission().active(), 1u);
  EXPECT_FALSE(gs2.admission().would_admit("host1", "host2"));
  EXPECT_FALSE(gs2.admission().would_admit("host2", "host1"));
  // No MPVM reports the unit as still migrating, so the next heartbeat's
  // watchdog pass reaps the adopted entry and frees the lane.
  gs2.set_active(true);
  gs2.tick();
  EXPECT_EQ(gs2.admission().active(), 0u);
  EXPECT_TRUE(gs2.admission().would_admit("host1", "host2"));
}

}  // namespace
}  // namespace cpe::gs
