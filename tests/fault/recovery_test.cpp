// Failure-aware migration, end to end: crash-safe MPVM rollback, UPVM move
// aborts, ADM degradation, and GS-driven retry and checkpoint recovery,
// all exercised through deterministic FaultPlan schedules.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "gs/scheduler.hpp"

namespace cpe::fault {
namespace {

using pvm::Task;
using pvm::Tid;

/// A worknet of three compatible workstations with MPVM on top — built
/// locally (not a TEST_F fixture) so scenarios can run several fresh copies
/// for replay-determinism checks.
struct MiniVm {
  sim::Engine eng;
  net::Network net{eng};
  os::Host host1{eng, net, os::HostConfig("host1", "HPPA", 1.0)};
  os::Host host2{eng, net, os::HostConfig("host2", "HPPA", 1.0)};
  os::Host host3{eng, net, os::HostConfig("host3", "HPPA", 1.0)};
  pvm::PvmSystem vm{eng, net};
  mpvm::Mpvm mpvm{vm};
  FaultPlan plan{eng};

  MiniVm() {
    vm.add_host(host1);
    vm.add_host(host2);
    vm.add_host(host3);
  }
};

std::size_t find_entry(const std::vector<gs::Decision>& journal,
                       const std::string& needle, std::size_t from = 0) {
  for (std::size_t i = from; i < journal.size(); ++i)
    if (journal[i].what.find(needle) != std::string::npos) return i;
  return journal.size();
}

// ---------------------------------------------------------------------------
// MPVM rollback
// ---------------------------------------------------------------------------

/// Crash the destination when the migration reaches `stage`: the migration
/// must roll back, the victim must finish at the source, and a sender that
/// was (or would have been) blocked by the flush must be released.
void run_destination_crash(mpvm::MigrationStage stage) {
  SCOPED_TRACE(std::string(mpvm::to_string(stage)));
  MiniVm w;
  std::optional<Tid> vtid;
  bool victim_done = false;
  const os::Host* victim_final = nullptr;
  int sender_sent = 0;
  w.vm.register_program("victim", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 100'000;
    co_await t.compute(5.0);
    co_await t.recv(pvm::kAny, 7);
    victim_done = true;
    victim_final = &t.pvmd().host();
  });
  w.vm.register_program("sender", [&](Task& t) -> sim::Co<void> {
    co_await sim::Delay(w.eng, 2.0);  // lands around the migration attempt
    t.initsend().pk_int(1);
    co_await t.send(*vtid, 7);
    ++sender_sent;
  });
  std::optional<mpvm::MigrationStats> st;
  auto driver = [&]() -> sim::Proc {
    auto v = co_await w.vm.spawn("victim", 1, "host1");
    vtid = v[0];
    co_await w.vm.spawn("sender", 1, "host3");
    w.plan.crash_at_stage(w.mpvm, w.host2, v[0], stage);
    co_await sim::Delay(w.eng, 1.0);
    st = co_await w.mpvm.migrate(v[0], w.host2);
  };
  sim::spawn(w.eng, driver());
  w.eng.run();
  ASSERT_TRUE(st.has_value());
  EXPECT_FALSE(st->ok);
  EXPECT_FALSE(st->failure.empty());
  EXPECT_TRUE(victim_done);
  EXPECT_EQ(victim_final, &w.host1);  // rolled back, never moved
  EXPECT_EQ(sender_sent, 1);
  EXPECT_TRUE(w.mpvm.history().empty());  // failed attempts are not history
  ASSERT_EQ(w.plan.injected().size(), 1u);
  EXPECT_NE(w.plan.injected()[0].what.find("crash host2"), std::string::npos);
  EXPECT_EQ(w.vm.live_task_count(), 0u);
}

TEST(MpvmRollback, DestinationCrashAtEveryStageRollsBack) {
  run_destination_crash(mpvm::MigrationStage::kEvent);
  run_destination_crash(mpvm::MigrationStage::kFrozen);
  run_destination_crash(mpvm::MigrationStage::kFlushed);
  run_destination_crash(mpvm::MigrationStage::kTransferred);
}

TEST(MpvmRollback, SourceCrashKillsTaskButUnblocksSenders) {
  MiniVm w;
  std::optional<Tid> vtid;
  bool victim_done = false;
  int sender_sent = 0;
  w.vm.register_program("victim", [&](Task& t) -> sim::Co<void> {
    co_await t.compute(50.0);
    victim_done = true;
  });
  w.vm.register_program("sender", [&](Task& t) -> sim::Co<void> {
    co_await sim::Delay(w.eng, 2.0);
    t.initsend().pk_int(1);
    co_await t.send(*vtid, 7);  // dropped for the dead task, must not hang
    ++sender_sent;
  });
  std::optional<mpvm::MigrationStats> st;
  auto driver = [&]() -> sim::Proc {
    auto v = co_await w.vm.spawn("victim", 1, "host1");
    vtid = v[0];
    co_await w.vm.spawn("sender", 1, "host3");
    w.plan.crash_at_stage(w.mpvm, w.host1, v[0],
                          mpvm::MigrationStage::kFrozen);
    co_await sim::Delay(w.eng, 1.0);
    st = co_await w.mpvm.migrate(v[0], w.host2);
  };
  sim::spawn(w.eng, driver());
  w.eng.run();
  ASSERT_TRUE(st.has_value());
  EXPECT_FALSE(st->ok);
  EXPECT_EQ(st->failure, "source host crashed while frozen");
  EXPECT_FALSE(victim_done);  // no checkpoint: the crash really lost the work
  EXPECT_EQ(sender_sent, 1);
  EXPECT_TRUE(w.mpvm.history().empty());
  EXPECT_EQ(w.vm.live_task_count(), 0u);
}

TEST(MpvmRollback, FlushAckTimeoutWithUnreachablePeerAborts) {
  MiniVm w;
  w.mpvm.set_timeouts(mpvm::MpvmTimeouts{.flush_ack = 2.0, .transfer = 30.0});
  bool victim_done = false, peer_done = false;
  const os::Host* victim_final = nullptr;
  // The peer greets the victim once so the scoped flush round targets it.
  w.vm.register_program("victim", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 50'000;
    co_await t.recv(pvm::kAny, 9);
    co_await t.compute(10.0);
    victim_done = true;
    victim_final = &t.pvmd().host();
  });
  w.vm.register_program("peer", [&](Task& t) -> sim::Co<void> {
    t.initsend().pk_int(1);
    co_await t.send(Tid::make(0, 1), 9);
    co_await t.compute(12.0);
    peer_done = true;
  });
  // The peer's workstation hangs after the greeting but before the flush
  // arrives, and stays wedged past the datagram retry budget *and* the
  // flush-ack deadline: the flush is undeliverable, no ack ever comes, and
  // the migration must abort rather than hang.
  w.plan.freeze_at(w.host3, 0.9, 8.0);
  std::optional<mpvm::MigrationStats> st;
  auto driver = [&]() -> sim::Proc {
    auto v = co_await w.vm.spawn("victim", 1, "host1");
    co_await w.vm.spawn("peer", 1, "host3");
    co_await sim::Delay(w.eng, 1.0);
    st = co_await w.mpvm.migrate(v[0], w.host2);
  };
  sim::spawn(w.eng, driver());
  w.eng.run();
  ASSERT_TRUE(st.has_value());
  EXPECT_FALSE(st->ok);
  EXPECT_NE(st->failure.find("flush acks timed out"), std::string::npos);
  EXPECT_TRUE(victim_done);
  EXPECT_EQ(victim_final, &w.host1);
  EXPECT_TRUE(peer_done);  // the freeze was transient; nothing was lost
  EXPECT_TRUE(w.mpvm.history().empty());
  EXPECT_EQ(w.vm.live_task_count(), 0u);
}

TEST(MpvmRollback, SkeletonSpawnFailureRollsBackThenRetrySucceeds) {
  MiniVm w;
  w.plan.fail_skeleton_spawns(w.mpvm, 1);
  bool victim_done = false;
  const os::Host* victim_final = nullptr;
  w.vm.register_program("victim", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 50'000;
    co_await t.compute(20.0);
    victim_done = true;
    victim_final = &t.pvmd().host();
  });
  std::optional<mpvm::MigrationStats> first, second;
  auto driver = [&]() -> sim::Proc {
    auto v = co_await w.vm.spawn("victim", 1, "host1");
    co_await sim::Delay(w.eng, 1.0);
    first = co_await w.mpvm.migrate(v[0], w.host2);
    second = co_await w.mpvm.migrate(v[0], w.host2);
  };
  sim::spawn(w.eng, driver());
  w.eng.run();
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->ok);
  EXPECT_NE(first->failure.find("skeleton spawn failed"), std::string::npos);
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->ok);
  EXPECT_TRUE(victim_done);
  EXPECT_EQ(victim_final, &w.host2);
  EXPECT_EQ(w.mpvm.history().size(), 1u);
  ASSERT_EQ(w.plan.injected().size(), 1u);
  EXPECT_NE(w.plan.injected()[0].what.find("skeleton spawn"),
            std::string::npos);
  EXPECT_EQ(w.vm.live_task_count(), 0u);
}

// ---------------------------------------------------------------------------
// GS retry: the acceptance scenario
// ---------------------------------------------------------------------------

struct GsRetryOutcome {
  std::vector<std::pair<std::string, bool>> journal;
  double finished = -1;
  std::string final_host;
  std::size_t migrations = 0;
  std::string migrated_to;
};

/// The ISSUE acceptance scenario: the GS vacates host1; the chosen
/// destination (host2) crashes mid-state-transfer; the GS journals the
/// failed attempt, blacklists host2, backs off, and retries successfully
/// against host3.  Fully deterministic: a fixed fault schedule and no
/// stochastic inputs.
GsRetryOutcome run_gs_retry_scenario() {
  MiniVm w;
  gs::GlobalScheduler gs(w.vm);
  gs.attach(w.mpvm);
  // Load host3 so the first pick is host2 — the host the plan crashes.
  w.host3.cpu().set_external_jobs(2);
  GsRetryOutcome out;
  w.vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 2'000'000;  // seconds of transfer
    co_await t.compute(40.0);
    out.finished = w.eng.now();
    out.final_host = t.pvmd().host().name();
  });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await w.vm.spawn("worker", 1, "host1");
    w.plan.crash_at_stage(w.mpvm, w.host2, v[0],
                          mpvm::MigrationStage::kFlushed, /*extra_delay=*/0.5);
    co_await sim::Delay(w.eng, 1.0);
    gs.vacate(w.host1);
  };
  sim::spawn(w.eng, driver());
  w.eng.run();
  for (const gs::Decision& d : gs.journal())
    out.journal.emplace_back(d.what, d.ok);
  out.migrations = w.mpvm.history().size();
  if (!w.mpvm.history().empty())
    out.migrated_to = w.mpvm.history().front().to_host;
  return out;
}

TEST(GsRecovery, FailedVacateIsRetriedAgainstNextBestHost) {
  const GsRetryOutcome out = run_gs_retry_scenario();

  std::vector<gs::Decision> journal;
  for (const auto& [what, ok] : out.journal)
    journal.emplace_back(0.0, what, ok);
  const std::size_t attempt1 = find_entry(journal, "host1 -> host2");
  const std::size_t failed = find_entry(journal, "failed:", attempt1);
  const std::size_t blacklisted =
      find_entry(journal, "blacklisting host2", failed);
  const std::size_t retrying = find_entry(journal, "retrying", blacklisted);
  const std::size_t attempt2 =
      find_entry(journal, "host1 -> host3", retrying);
  // The exact recovery narrative, in order: attempt, failure, blacklist,
  // backoff, successful retry.
  ASSERT_LT(attempt1, journal.size());
  ASSERT_LT(failed, journal.size());
  ASSERT_LT(blacklisted, journal.size());
  ASSERT_LT(retrying, journal.size());
  ASSERT_LT(attempt2, journal.size());
  EXPECT_TRUE(journal[attempt1].ok);
  EXPECT_FALSE(journal[failed].ok);  // the Decision::ok=false record
  EXPECT_TRUE(journal[attempt2].ok);

  // The blacklist note attributes the transport's view of the shunned
  // destination — lossy (drops, delivery errors) vs adversarial
  // (duplicates, corruption) — straight from the per-destination counters.
  const std::string& note = journal[blacklisted].what;
  EXPECT_NE(note.find("drops="), std::string::npos) << note;
  EXPECT_NE(note.find("duplicates="), std::string::npos) << note;
  EXPECT_NE(note.find("corrupt="), std::string::npos) << note;

  EXPECT_EQ(out.migrations, 1u);  // only the successful attempt
  EXPECT_EQ(out.migrated_to, "host3");
  EXPECT_EQ(out.final_host, "host3");
  EXPECT_GT(out.finished, 40.0);
}

TEST(GsRecovery, RetryScenarioReplaysIdentically) {
  const GsRetryOutcome a = run_gs_retry_scenario();
  const GsRetryOutcome b = run_gs_retry_scenario();
  EXPECT_EQ(a.journal, b.journal);  // same decisions, same order, same flags
  EXPECT_DOUBLE_EQ(a.finished, b.finished);
  EXPECT_EQ(a.final_host, b.final_host);
}

TEST(GsRecovery, VacateWithNoLiveDestinationIsJournalledNotCrashed) {
  MiniVm w;
  gs::GlobalScheduler gs(w.vm);
  gs.attach(w.mpvm);
  w.vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    co_await t.compute(10.0);
  });
  auto driver = [&]() -> sim::Proc {
    co_await w.vm.spawn("worker", 1, "host1");
    w.host2.crash();
    w.host3.crash();
    co_await sim::Delay(w.eng, 1.0);
    gs.vacate(w.host1);  // nowhere to go
  };
  sim::spawn(w.eng, driver());
  w.eng.run();
  const std::size_t i =
      find_entry(gs.journal(), "no compatible live destination");
  ASSERT_LT(i, gs.journal().size());
  EXPECT_FALSE(gs.journal()[i].ok);
  EXPECT_TRUE(w.mpvm.history().empty());  // the task stayed put and finished
  EXPECT_EQ(w.vm.live_task_count(), 0u);
}

TEST(GsRecovery, HeartbeatDetectsCrashReportsLossAndRecovery) {
  MiniVm w;
  gs::GlobalScheduler gs(w.vm);
  gs.attach(w.mpvm);
  w.vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    co_await t.compute(30.0);
  });
  auto driver = [&]() -> sim::Proc {
    co_await w.vm.spawn("worker", 1, "host2");
  };
  sim::spawn(w.eng, driver());
  w.plan.crash_at(w.host2, 3.0);
  w.plan.recover_at(w.host2, 8.0);
  gs.start_heartbeat(20.0);
  w.eng.run();
  const std::size_t down = find_entry(gs.journal(), "host host2 is down");
  const std::size_t lost = find_entry(gs.journal(), "work is lost", down);
  const std::size_t back =
      find_entry(gs.journal(), "host host2 recovered", lost);
  ASSERT_LT(down, gs.journal().size());
  ASSERT_LT(lost, gs.journal().size());
  ASSERT_LT(back, gs.journal().size());
  EXPECT_FALSE(gs.journal()[down].ok);
  EXPECT_FALSE(gs.journal()[lost].ok);
  EXPECT_TRUE(gs.journal()[back].ok);
}

TEST(GsRecovery, WatchedTaskIsRestartedFromCheckpointAfterCrash) {
  MiniVm w;
  mpvm::Checkpointer ckpt(w.vm, w.host3,
                          mpvm::CheckpointOptions{.interval = 2.0});
  gs::GlobalScheduler gs(w.vm);
  gs.attach(w.mpvm);
  gs.attach(ckpt);
  double finished = -1;
  std::string final_host;
  w.vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 100'000;
    co_await t.compute(30.0);
    finished = w.eng.now();
    final_host = t.pvmd().host().name();
  });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await w.vm.spawn("worker", 1, "host1");
    ckpt.watch(v[0]);
  };
  sim::spawn(w.eng, driver());
  w.plan.crash_at(w.host1, 7.0);
  gs.start_heartbeat(60.0);
  w.eng.run();
  // The crash stranded the watched task; the heartbeat noticed and the
  // recovery driver restarted it from its last checkpoint elsewhere.
  EXPECT_GT(finished, 30.0);  // lost work was re-executed
  EXPECT_FALSE(final_host.empty());
  EXPECT_NE(final_host, "host1");
  ASSERT_EQ(ckpt.vacate_history().size(), 1u);
  EXPECT_GT(ckpt.vacate_history()[0].redo_work, 0.0);
  const std::size_t recovering = find_entry(gs.journal(), "recovering");
  const std::size_t recovered =
      find_entry(gs.journal(), "recovered", recovering);
  ASSERT_LT(recovering, gs.journal().size());
  ASSERT_LT(recovered, gs.journal().size());
  EXPECT_TRUE(gs.journal()[recovered].ok);
}

TEST(GsRecovery, CheckpointRestartRacingAVacateAvoidsBlacklistedHost) {
  // A vacate migration is in flight when the source host dies.  The failed
  // attempt blacklists its destination; the checkpoint recovery that races
  // in behind it must wait the migration out and must NOT resurrect the
  // task on the blacklisted host — even though that host is up again and
  // the least loaded on the worknet.
  sim::Engine eng;
  net::Network net{eng};
  os::Host host1{eng, net, os::HostConfig("host1", "HPPA", 1.0)};
  os::Host host2{eng, net, os::HostConfig("host2", "HPPA", 1.0)};
  os::Host host3{eng, net, os::HostConfig("host3", "HPPA", 1.0)};
  os::Host host4{eng, net, os::HostConfig("host4", "HPPA", 1.0)};
  pvm::PvmSystem vm{eng, net};
  vm.add_host(host1);
  vm.add_host(host2);
  vm.add_host(host3);
  vm.add_host(host4);
  mpvm::Mpvm mpvm{vm};
  FaultPlan plan{eng};
  mpvm::Checkpointer ckpt(vm, host4, mpvm::CheckpointOptions{.interval = 1.0});
  gs::GsPolicy pol;
  pol.max_migration_retries = 1;  // the failed vacate gives up immediately
  gs::GlobalScheduler gs(vm, pol);
  gs.attach(mpvm);
  gs.attach(ckpt);
  // Load ranking: host2 is the clear first pick, before host3 and host4.
  host3.cpu().set_external_jobs(1);
  host4.cpu().set_external_jobs(2);
  double finished = -1;
  std::string final_host;
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 5'000'000;  // seconds of transfer
    co_await t.compute(30.0);
    finished = eng.now();
    final_host = t.pvmd().host().name();
  });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("worker", 1, "host1");
    ckpt.watch(v[0]);
    co_await sim::Delay(eng, 1.0);
    gs.vacate(host1);
  };
  sim::spawn(eng, driver());
  plan.crash_at(host1, 3.5);  // source dies mid-transfer to host2
  gs.start_heartbeat(60.0);
  eng.run();

  // The vacate attempt failed against the dead source and shunned host2;
  // the recovery then restarted the task from its checkpoint elsewhere.
  const std::size_t blacklisted = find_entry(gs.journal(), "blacklisting host2");
  const std::size_t recovering =
      find_entry(gs.journal(), "recovering", blacklisted);
  const std::size_t recovered = find_entry(gs.journal(), "recovered", recovering);
  ASSERT_LT(blacklisted, gs.journal().size());
  ASSERT_LT(recovering, gs.journal().size());
  ASSERT_LT(recovered, gs.journal().size());
  EXPECT_TRUE(gs.journal()[recovered].ok);
  // Restarted on host3 — NOT on the blacklisted (but up and least-loaded)
  // host2, and not resurrected twice.
  EXPECT_EQ(final_host, "host3");
  EXPECT_GT(finished, 30.0);  // lost work was redone from the checkpoint
  ASSERT_EQ(ckpt.vacate_history().size(), 1u);
  EXPECT_TRUE(mpvm.history().empty());  // the vacate migration never landed
  EXPECT_EQ(vm.live_task_count(), 0u);
}

// ---------------------------------------------------------------------------
// UPVM abort
// ---------------------------------------------------------------------------

TEST(UpvmAbort, UnreachableDestinationAbortsMoveAndUlpStaysRunnable) {
  MiniVm w;
  upvm::Upvm upvm(w.vm);
  sim::spawn(w.eng, upvm.start());
  w.eng.run();
  bool done = false;
  upvm.run_spmd(
      [&](upvm::Ulp& u) -> sim::Co<void> {
        u.set_data_bytes(100'000);
        co_await u.compute(20.0);
        done = true;
      },
      1);
  // host2 wedges before the flush round can reach its container and stays
  // wedged past the flush-ack deadline: the move must abort.
  w.plan.freeze_at(w.host2, 0.9, 10.0);
  std::optional<upvm::UlpMigrationStats> st;
  auto driver = [&]() -> sim::Proc {
    co_await sim::Delay(w.eng, 1.0);
    st = co_await upvm.migrate_ulp(0, w.host2);
  };
  sim::spawn(w.eng, driver());
  w.eng.run();
  ASSERT_TRUE(st.has_value());
  EXPECT_FALSE(st->ok);
  EXPECT_FALSE(st->failure.empty());
  EXPECT_TRUE(done);  // still ran to completion at the source
  EXPECT_EQ(&upvm.ulp(0)->host(), &w.host1);
  EXPECT_TRUE(upvm.history().empty());
}

// ---------------------------------------------------------------------------
// ADM degradation
// ---------------------------------------------------------------------------

TEST(AdmDegradation, CrashedSlaveIsImplicitWithdrawAndRunCompletes) {
  MiniVm w;
  opt::AdmOptConfig cfg;
  cfg.opt.data_bytes = 600'000;
  cfg.opt.nslaves = 3;
  cfg.opt.iterations = 3;
  cfg.opt.real_math = false;
  cfg.opt.master_host = "host1";
  cfg.opt.slave_hosts = {"host1", "host2", "host3"};
  cfg.chunk_items = 16;
  opt::AdmOpt app(w.vm, cfg);
  opt::OptResult r;
  auto driver = [&]() -> sim::Proc { r = co_await app.run(); };
  sim::spawn(w.eng, driver());
  auto crasher = [&]() -> sim::Proc {
    while (!app.slaves_are_ready()) co_await app.slaves_ready().wait();
    co_await sim::Delay(w.eng, 0.5);  // mid-epoch
    w.host2.crash();
  };
  sim::spawn(w.eng, crasher());
  w.eng.run();
  // Degraded, not aborted: the survivors finish every epoch; slave 1's
  // exemplars died with host2 and are accounted as lost.
  EXPECT_EQ(r.iterations_done, 3);
  EXPECT_FALSE(app.slave_lost(0));
  EXPECT_TRUE(app.slave_lost(1));
  EXPECT_FALSE(app.slave_lost(2));
  EXPECT_GT(app.lost_item_count(), 0u);
  EXPECT_GT(app.final_item_count(), 0u);
}

}  // namespace
}  // namespace cpe::fault
