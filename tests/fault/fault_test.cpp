#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "os/host.hpp"

namespace cpe::fault {
namespace {

struct FaultPlanFixture : ::testing::Test {
  sim::Engine eng;
  net::Network net{eng};
  os::Host h1{eng, net, os::HostConfig("h1", "HPPA", 1.0)};
  os::Host h2{eng, net, os::HostConfig("h2", "HPPA", 1.0)};
  FaultPlan plan{eng};
};

TEST_F(FaultPlanFixture, CrashAndRecoverFireAtScheduledTimesAndRecord) {
  plan.crash_at(h1, 2.0);
  plan.recover_at(h1, 5.0);
  eng.run();
  EXPECT_TRUE(h1.up());
  ASSERT_EQ(plan.injected().size(), 2u);
  EXPECT_DOUBLE_EQ(plan.injected()[0].t, 2.0);
  EXPECT_EQ(plan.injected()[0].what, "crash h1");
  EXPECT_DOUBLE_EQ(plan.injected()[1].t, 5.0);
  EXPECT_EQ(plan.injected()[1].what, "recover h1");
}

TEST_F(FaultPlanFixture, RedundantCrashIsNotInjected) {
  plan.crash_at(h1, 1.0);
  plan.crash_at(h1, 2.0);  // already down: nothing to inject
  plan.recover_at(h2, 3.0);  // already up: nothing to inject
  eng.run();
  ASSERT_EQ(plan.injected().size(), 1u);
  EXPECT_EQ(plan.injected()[0].what, "crash h1");
  EXPECT_FALSE(h1.up());
}

TEST_F(FaultPlanFixture, FreezeWindowIsTransient) {
  os::Process& p = h1.create_process("worker");
  double done_at = -1;
  auto program = [&]() -> sim::Proc {
    co_await p.compute(3.0);
    done_at = eng.now();
  };
  p.run(program());
  plan.freeze_at(h1, 1.0, 4.0);
  eng.run();
  EXPECT_TRUE(h1.up());
  EXPECT_FALSE(h1.frozen());
  EXPECT_TRUE(p.alive());  // nothing was lost
  EXPECT_DOUBLE_EQ(done_at, 7.0);  // 1 s work + 4 s frozen + 2 s work
  ASSERT_EQ(plan.injected().size(), 2u);
  EXPECT_EQ(plan.injected()[0].what, "freeze h1");
  EXPECT_EQ(plan.injected()[1].what, "unfreeze h1");
}

TEST_F(FaultPlanFixture, LossWindowSetsAndRestoresProbability) {
  plan.loss_window(net.datagrams(), 1.0, 2.0, 0.5);
  double during = -1;
  eng.schedule_at(2.0, [&] {
    during = net.datagrams().params().loss_probability;
  });
  eng.run();
  EXPECT_DOUBLE_EQ(during, 0.5);
  EXPECT_DOUBLE_EQ(net.datagrams().params().loss_probability, 0.0);
  ASSERT_EQ(plan.injected().size(), 2u);
  EXPECT_EQ(plan.injected()[1].what, "loss window closes");
}

TEST_F(FaultPlanFixture, FlapLinksCyclesConnectivityAndRecordsEachEdge) {
  const std::vector<os::Host*> island{&h2};
  // Outages at t=1 and t=3 (0.5 s each); until=5 stops the train there.
  plan.flap_links(net.ethernet(), island, 1.0, 0.5, 2.0, 5.0);
  std::vector<bool> reachable;
  for (const double t : {0.5, 1.25, 1.75, 3.25, 4.5})
    eng.schedule_at(t, [&] {
      reachable.push_back(net.ethernet().reachable(h1.node(), h2.node()));
    });
  eng.run();
  EXPECT_EQ(reachable,
            (std::vector<bool>{true, false, true, false, true}));
  ASSERT_EQ(plan.injected().size(), 4u);
  EXPECT_EQ(plan.injected()[0].what, "flap 0: links down");
  EXPECT_EQ(plan.injected()[1].what, "flap 0: links up");
  EXPECT_EQ(plan.injected()[2].what, "flap 1: links down");
  EXPECT_EQ(plan.injected()[3].what, "flap 1: links up");
  // The final heal always lands: the island never stays cut off.
  EXPECT_TRUE(net.ethernet().reachable(h1.node(), h2.node()));
}

TEST_F(FaultPlanFixture, FlapOutageIsRiddenOutByRetransmission) {
  const std::vector<os::Host*> island{&h2};
  plan.flap_links(net.ethernet(), island, 0.1, 0.3, 1.0, 0.5);
  bool delivered = false;
  net.datagrams().bind(h2.node(), 7, [&](net::Datagram) {
    delivered = true;
  });
  auto body = [&]() -> sim::Proc {
    co_await sim::Delay(eng, 0.15);  // mid-outage
    co_await net.datagrams().send(
        net::Datagram{h1.node(), h2.node(), 7, 1'000, 0});
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_TRUE(delivered);
  EXPECT_GT(net.datagrams().fragments_retransmitted(), 0u);
}

TEST_F(FaultPlanFixture, AdversaryWindowOpensAndRestoresPriorProfile) {
  net.set_adversary({.duplicate_probability = 0.1});
  plan.adversary_window(net, 1.0, 2.0,
                        {.corrupt_probability = 0.5});
  double during_corrupt = -1, during_dup = -1;
  eng.schedule_at(2.0, [&] {
    during_corrupt = net.adversary().corrupt_probability;
    during_dup = net.adversary().duplicate_probability;
  });
  eng.run();
  // Inside the window the configured profile replaces the ambient one...
  EXPECT_DOUBLE_EQ(during_corrupt, 0.5);
  EXPECT_DOUBLE_EQ(during_dup, 0.0);
  // ...and closing restores exactly what was armed before.
  EXPECT_DOUBLE_EQ(net.adversary().duplicate_probability, 0.1);
  EXPECT_DOUBLE_EQ(net.adversary().corrupt_probability, 0.0);
  ASSERT_EQ(plan.injected().size(), 2u);
  EXPECT_TRUE(plan.injected()[0].what.starts_with("adversary window opens"));
  EXPECT_EQ(plan.injected()[1].what, "adversary window closes");
}

TEST_F(FaultPlanFixture, RandomCrashRecoverIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    sim::Engine eng2;
    net::Network net2(eng2);
    os::Host a(eng2, net2, os::HostConfig("a", "HPPA", 1.0));
    os::Host b(eng2, net2, os::HostConfig("b", "HPPA", 1.0));
    FaultPlan plan2(eng2, seed);
    const std::vector<os::Host*> hosts{&a, &b};
    plan2.random_crash_recover(hosts, 100.0, 10.0, 2.0);
    eng2.run();
    std::vector<std::pair<double, std::string>> out;
    for (const FaultRecord& r : plan2.injected()) out.emplace_back(r.t, r.what);
    return out;
  };
  const auto first = run_once(7);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run_once(7));
  EXPECT_NE(first, run_once(8));
}

}  // namespace
}  // namespace cpe::fault
