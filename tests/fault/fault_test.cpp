#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "os/host.hpp"

namespace cpe::fault {
namespace {

struct FaultPlanFixture : ::testing::Test {
  sim::Engine eng;
  net::Network net{eng};
  os::Host h1{eng, net, os::HostConfig("h1", "HPPA", 1.0)};
  os::Host h2{eng, net, os::HostConfig("h2", "HPPA", 1.0)};
  FaultPlan plan{eng};
};

TEST_F(FaultPlanFixture, CrashAndRecoverFireAtScheduledTimesAndRecord) {
  plan.crash_at(h1, 2.0);
  plan.recover_at(h1, 5.0);
  eng.run();
  EXPECT_TRUE(h1.up());
  ASSERT_EQ(plan.injected().size(), 2u);
  EXPECT_DOUBLE_EQ(plan.injected()[0].t, 2.0);
  EXPECT_EQ(plan.injected()[0].what, "crash h1");
  EXPECT_DOUBLE_EQ(plan.injected()[1].t, 5.0);
  EXPECT_EQ(plan.injected()[1].what, "recover h1");
}

TEST_F(FaultPlanFixture, RedundantCrashIsNotInjected) {
  plan.crash_at(h1, 1.0);
  plan.crash_at(h1, 2.0);  // already down: nothing to inject
  plan.recover_at(h2, 3.0);  // already up: nothing to inject
  eng.run();
  ASSERT_EQ(plan.injected().size(), 1u);
  EXPECT_EQ(plan.injected()[0].what, "crash h1");
  EXPECT_FALSE(h1.up());
}

TEST_F(FaultPlanFixture, FreezeWindowIsTransient) {
  os::Process& p = h1.create_process("worker");
  double done_at = -1;
  auto program = [&]() -> sim::Proc {
    co_await p.compute(3.0);
    done_at = eng.now();
  };
  p.run(program());
  plan.freeze_at(h1, 1.0, 4.0);
  eng.run();
  EXPECT_TRUE(h1.up());
  EXPECT_FALSE(h1.frozen());
  EXPECT_TRUE(p.alive());  // nothing was lost
  EXPECT_DOUBLE_EQ(done_at, 7.0);  // 1 s work + 4 s frozen + 2 s work
  ASSERT_EQ(plan.injected().size(), 2u);
  EXPECT_EQ(plan.injected()[0].what, "freeze h1");
  EXPECT_EQ(plan.injected()[1].what, "unfreeze h1");
}

TEST_F(FaultPlanFixture, LossWindowSetsAndRestoresProbability) {
  plan.loss_window(net.datagrams(), 1.0, 2.0, 0.5);
  double during = -1;
  eng.schedule_at(2.0, [&] {
    during = net.datagrams().params().loss_probability;
  });
  eng.run();
  EXPECT_DOUBLE_EQ(during, 0.5);
  EXPECT_DOUBLE_EQ(net.datagrams().params().loss_probability, 0.0);
  ASSERT_EQ(plan.injected().size(), 2u);
  EXPECT_EQ(plan.injected()[1].what, "loss window closes");
}

TEST_F(FaultPlanFixture, RandomCrashRecoverIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    sim::Engine eng2;
    net::Network net2(eng2);
    os::Host a(eng2, net2, os::HostConfig("a", "HPPA", 1.0));
    os::Host b(eng2, net2, os::HostConfig("b", "HPPA", 1.0));
    FaultPlan plan2(eng2, seed);
    const std::vector<os::Host*> hosts{&a, &b};
    plan2.random_crash_recover(hosts, 100.0, 10.0, 2.0);
    eng2.run();
    std::vector<std::pair<double, std::string>> out;
    for (const FaultRecord& r : plan2.injected()) out.emplace_back(r.t, r.what);
    return out;
  };
  const auto first = run_once(7);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run_once(7));
  EXPECT_NE(first, run_once(8));
}

}  // namespace
}  // namespace cpe::fault
