#include "mpvm/mpvm.hpp"

#include <gtest/gtest.h>

#include "support/pvm_fixture.hpp"

namespace cpe::mpvm {
namespace {

using pvm::kAny;
using pvm::Message;
using pvm::Task;
using pvm::Tid;

struct MpvmTest : cpe::test::WorknetFixture {
  Mpvm mpvm{vm};
};

TEST_F(MpvmTest, ShimChargesPerCallOverhead) {
  EXPECT_NE(vm.shim(), nullptr);
  // Identical sends cost slightly more under MPVM than stock PVM; checked
  // end-to-end by the Table 1 bench.  Here: the shim reports nonzero cost.
  vm.register_program("noop", [](Task&) -> sim::Co<void> { co_return; });
  auto body = [&]() -> sim::Proc { co_await vm.spawn("noop", 1); };
  sim::spawn(eng, body());
  run_all();
  Task* t = vm.all_tasks().front();
  EXPECT_GT(vm.shim()->send_overhead(*t), 0.0);
  EXPECT_GT(vm.shim()->recv_overhead(*t), 0.0);
}

TEST_F(MpvmTest, MigrateComputingTaskResumesAndCompletes) {
  double finished_at = -1;
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 100'000;
    co_await t.compute(20.0);
    finished_at = eng.now();
    EXPECT_EQ(&t.pvmd().host(), &host2);  // really moved
  });
  std::optional<MigrationStats> stats;
  auto driver = [&]() -> sim::Proc {
    auto tids = co_await vm.spawn("worker", 1, "host1");
    co_await sim::Delay(eng, 5.0);
    stats = co_await mpvm.migrate(tids[0], host2);
  };
  sim::spawn(eng, driver());
  run_all();
  ASSERT_TRUE(stats.has_value());
  // Work pauses during the migration and resumes on host2: total runtime =
  // 20s of work + the protocol's dead time.
  EXPECT_GT(finished_at, 20.0);
  EXPECT_LT(finished_at, 20.0 + 3.0);
  EXPECT_GT(stats->obtrusiveness(), 0.0);
  EXPECT_GE(stats->migration_time(), stats->obtrusiveness());
}

TEST_F(MpvmTest, MigrateTaskBlockedInRecv) {
  // The paper re-implemented pvm_recv precisely to allow this (§4.1.1).
  bool got = false;
  vm.register_program("receiver", [&](Task& t) -> sim::Co<void> {
    co_await t.recv(kAny, 7);
    got = true;
    EXPECT_EQ(&t.pvmd().host(), &host2);
  });
  vm.register_program("sender", [&](Task& t) -> sim::Co<void> {
    co_await sim::Delay(eng, 30.0);  // long after the migration
    t.initsend().pk_int(1);
    co_await t.send(Tid::make(0, 1), 7);
  });
  auto driver = [&]() -> sim::Proc {
    auto r = co_await vm.spawn("receiver", 1, "host1");
    co_await vm.spawn("sender", 1, "host2");
    co_await sim::Delay(eng, 5.0);
    co_await mpvm.migrate(r[0], host2);
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_TRUE(got);
}

TEST_F(MpvmTest, UnreceivedMailboxMessagesSurviveMigration) {
  // Messages delivered before the migration but not yet received must move
  // with the process (they are part of its state).
  std::vector<int> got;
  vm.register_program("victim", [&](Task& t) -> sim::Co<void> {
    co_await sim::Delay(eng, 20.0);  // messages pile up; migration happens
    for (int i = 0; i < 3; ++i) {
      co_await t.recv(kAny, 5);
      got.push_back(t.rbuf().upk_int());
    }
  });
  vm.register_program("feeder", [&](Task& t) -> sim::Co<void> {
    for (int i = 0; i < 3; ++i) {
      t.initsend().pk_int(i);
      co_await t.send(Tid::make(0, 1), 5);
    }
  });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("victim", 1, "host1");
    co_await vm.spawn("feeder", 1, "host2");
    co_await sim::Delay(eng, 5.0);
    MigrationStats s = co_await mpvm.migrate(v[0], host2);
    EXPECT_GT(s.state_bytes, 0u);
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
}

TEST_F(MpvmTest, SendersBlockDuringMigrationOnly) {
  // §2.1: "Only processes sending a message to the migrating process are
  // blocked."  A bystander pair keeps communicating throughout.
  std::vector<double> sender_send_times;
  int bystander_roundtrips = 0;
  vm.register_program("victim", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 3'000'000;  // ~3s transfer
    for (int i = 0; i < 2; ++i) co_await t.recv(kAny, 1);
  });
  vm.register_program("sender", [&](Task& t) -> sim::Co<void> {
    // First send before the migration, second lands mid-migration.
    t.initsend().pk_int(0);
    co_await t.send(Tid::make(0, 1), 1);
    co_await sim::Delay(eng, 6.0);  // migration starts at t=5
    t.initsend().pk_int(1);
    co_await t.send(Tid::make(0, 1), 1);  // must block until restart
    sender_send_times.push_back(eng.now());
  });
  vm.register_program("bystander_a", [&](Task& t) -> sim::Co<void> {
    for (int i = 0; i < 40; ++i) {
      t.initsend().pk_int(i);
      co_await t.send(Tid::make(2, 1), 2);
      co_await t.recv(kAny, 3);
      ++bystander_roundtrips;
    }
  });
  vm.register_program("bystander_b", [&](Task& t) -> sim::Co<void> {
    for (int i = 0; i < 40; ++i) {
      Message m = co_await t.recv(kAny, 2);
      t.initsend().pk_int(i);
      co_await t.send(m.src, 3);
    }
  });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("victim", 1, "host1");
    co_await vm.spawn("sender", 1, "host2");
    co_await vm.spawn("bystander_b", 1, "sparc1");  // t2.1
    co_await vm.spawn("bystander_a", 1, "sparc1");  // t2.2
    co_await sim::Delay(eng, 5.0);
    MigrationStats s = co_await mpvm.migrate(v[0], host2);
    // The blocked sender resumed only after the restart broadcast reached
    // it — i.e. strictly after the state left the source host.
    EXPECT_EQ(sender_send_times.size(), 1u);
    if (!sender_send_times.empty()) {
      EXPECT_GE(sender_send_times[0], s.transfer_done);
    }
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_EQ(bystander_roundtrips, 40);
}

TEST_F(MpvmTest, MessagesToOldTidArriveAfterMigration) {
  // A task that learned the victim's tid before migration keeps using it;
  // the library re-mapping + daemon forwarding must still deliver.
  int received = 0;
  vm.register_program("victim", [&](Task& t) -> sim::Co<void> {
    for (int i = 0; i < 6; ++i) {
      co_await t.recv(kAny, 9);
      ++received;
    }
  });
  vm.register_program("talker", [&](Task& t) -> sim::Co<void> {
    for (int i = 0; i < 6; ++i) {
      t.initsend().pk_int(i);
      co_await t.send(Tid::make(0, 1), 9);  // always the original tid
      co_await sim::Delay(eng, 4.0);
    }
  });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("victim", 1, "host1");
    co_await vm.spawn("talker", 1, "host2");
    co_await sim::Delay(eng, 5.0);
    co_await mpvm.migrate(v[0], host2);
    co_await sim::Delay(eng, 6.0);
    co_await mpvm.migrate(v[0], host1);  // and back again
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_EQ(received, 6);
}

TEST_F(MpvmTest, PerPairSequencePreservedAcrossMigration) {
  // DESIGN.md invariant 1: the delivered sequence equals the sent sequence,
  // with no loss or duplication, despite a migration mid-stream.
  std::vector<int> delivered;
  vm.register_program("victim", [&](Task& t) -> sim::Co<void> {
    for (int i = 0; i < 30; ++i) {
      co_await t.recv(kAny, 4);
      delivered.push_back(t.rbuf().upk_int());
    }
  });
  vm.register_program("stream", [&](Task& t) -> sim::Co<void> {
    for (int i = 0; i < 30; ++i) {
      t.initsend().pk_int(i);
      co_await t.send(Tid::make(0, 1), 4);
      co_await sim::Delay(eng, 0.3);
    }
  });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("victim", 1, "host1");
    co_await vm.spawn("stream", 1, "host2");
    co_await sim::Delay(eng, 3.0);
    co_await mpvm.migrate(v[0], host2);
  };
  sim::spawn(eng, driver());
  run_all();
  std::vector<int> expect(30);
  for (int i = 0; i < 30; ++i) expect[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(delivered, expect);
}

TEST_F(MpvmTest, MigrationWaitsForLibraryExit) {
  // A task inside the run-time library cannot be migrated; the protocol
  // waits for it to leave (§2.1).
  vm.register_program("libhog", [&](Task& t) -> sim::Co<void> {
    {
      auto guard = t.process().enter_library();
      co_await t.process().compute(10.0);  // 10s inside the library
    }
    co_await t.process().compute(10.0);  // migratable application work
  });
  std::optional<MigrationStats> stats;
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("libhog", 1, "host1");
    co_await sim::Delay(eng, 2.0);
    stats = co_await mpvm.migrate(v[0], host2);
  };
  sim::spawn(eng, driver());
  run_all();
  ASSERT_TRUE(stats.has_value());
  // Migration could not freeze the task before it left the library at
  // ~t=10.38 (spawn offset); the event arrived at t=2.38.
  EXPECT_GT(stats->frozen_time - stats->event_time, 7.0);
}

TEST_F(MpvmTest, IncompatibleArchitectureRefused) {
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    co_await t.compute(30.0);
  });
  bool threw = false;
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("worker", 1, "host1");
    co_await sim::Delay(eng, 1.0);
    try {
      co_await mpvm.migrate(v[0], sparc);  // HPPA -> SPARC: refused (§3.3)
    } catch (const MigrationError&) {
      threw = true;
    }
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_TRUE(threw);
}

TEST_F(MpvmTest, MigrateToSameHostRefused) {
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    co_await t.compute(5.0);
  });
  bool threw = false;
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("worker", 1, "host1");
    try {
      co_await mpvm.migrate(v[0], host1);
    } catch (const MigrationError&) {
      threw = true;
    }
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_TRUE(threw);
}

TEST_F(MpvmTest, MigrateUnknownTaskRefused) {
  auto driver = [&]() -> sim::Proc {
    co_await mpvm.migrate(Tid::make(0, 77), host2);
  };
  sim::spawn(eng, driver());
  EXPECT_THROW(eng.run(), MigrationError);
}

TEST_F(MpvmTest, ObtrusivenessScalesWithStateSize) {
  auto run_with_bytes = [&](std::size_t bytes) {
    sim::Engine e;
    net::Network n(e);
    os::Host a(e, n, os::HostConfig("a"));
    os::Host b(e, n, os::HostConfig("b"));
    pvm::PvmSystem v(e, n);
    v.add_host(a);
    v.add_host(b);
    Mpvm m(v);
    v.register_program("worker", [bytes](Task& t) -> sim::Co<void> {
      t.process().image().data_bytes = bytes;
      co_await t.compute(200.0);
    });
    double obtr = -1;
    auto driver = [&]() -> sim::Proc {
      auto tids = co_await v.spawn("worker", 1, "a");
      co_await sim::Delay(e, 2.0);
      MigrationStats s = co_await m.migrate(tids[0], b);
      obtr = s.obtrusiveness();
    };
    sim::spawn(e, driver());
    e.run_until(100.0);
    return obtr;
  };
  const double small = run_with_bytes(300'000);
  const double large = run_with_bytes(3'000'000);
  EXPECT_GT(small, 0.8);   // fixed cost floor (skeleton start etc.)
  EXPECT_GT(large, small + 2.0);  // ~2.7s more for 2.7 MB at ~1 MB/s
}

TEST_F(MpvmTest, PaperTable2Row1Shape) {
  // 0.6 MB data size -> the slave holds 0.3 MB; paper: obtrusiveness 1.17 s,
  // migration 1.39 s.  Allow 20%.
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 300'000;
    t.process().image().stack_bytes = 0;     // paper counts data only
    t.process().image().context_bytes = 0;
    co_await t.compute(100.0);
  });
  std::optional<MigrationStats> stats;
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("worker", 1, "host1");
    co_await sim::Delay(eng, 2.0);
    stats = co_await mpvm.migrate(v[0], host2);
  };
  sim::spawn(eng, driver());
  eng.run_until(50.0);
  ASSERT_TRUE(stats.has_value());
  EXPECT_NEAR(stats->obtrusiveness(), 1.17, 0.25);
  EXPECT_NEAR(stats->migration_time(), 1.39, 0.30);
}

TEST_F(MpvmTest, ConcurrentMigrationsOfDifferentTasks) {
  int finished = 0;
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 200'000;
    co_await t.compute(30.0);
    ++finished;
  });
  auto driver = [&]() -> sim::Proc {
    auto a = co_await vm.spawn("worker", 1, "host1");
    auto b = co_await vm.spawn("worker", 1, "host1");
    co_await sim::Delay(eng, 2.0);
    // Overlapping migrations of two different tasks to the same target.
    // (Captureless lambda: a spawned coroutine must not outlive its
    // closure object.)
    auto m1 = [](Mpvm* mp, Tid v, os::Host* dst) -> sim::Proc {
      co_await mp->migrate(v, *dst);
    };
    sim::spawn(eng, m1(&mpvm, a[0], &host2));
    sim::spawn(eng, m1(&mpvm, b[0], &host2));
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_EQ(finished, 2);
  EXPECT_EQ(mpvm.history().size(), 2u);
}

TEST_F(MpvmTest, DoubleMigrationOfSameTaskRefused) {
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 5'000'000;  // slow migration
    co_await t.compute(100.0);
  });
  bool threw = false;
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("worker", 1, "host1");
    co_await sim::Delay(eng, 1.0);
    auto racer = [](Mpvm* mp, Tid victim, os::Host* dst) -> sim::Proc {
      co_await mp->migrate(victim, *dst);
    };
    sim::spawn(eng, racer(&mpvm, v[0], &host2));
    co_await sim::Delay(eng, 1.0);  // first migration still in flight
    try {
      co_await mpvm.migrate(v[0], host2);
    } catch (const MigrationError&) {
      threw = true;
    }
  };
  sim::spawn(eng, driver());
  eng.run_until(60.0);
  EXPECT_TRUE(threw);
}

TEST_F(MpvmTest, TraceRecordsAllFourStages) {
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    co_await t.compute(20.0);
  });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("worker", 1, "host1");
    co_await sim::Delay(eng, 1.0);
    co_await mpvm.migrate(v[0], host2);
  };
  sim::spawn(eng, driver());
  run_all();
  for (const char* stage :
       {"stage=event", "stage=frozen", "stage=flushed", "stage=skeleton",
        "stage=transferred", "stage=restarted"}) {
    EXPECT_NE(vm.trace().find("mpvm", stage), nullptr) << stage;
  }
}

TEST_F(MpvmTest, ComputeProgressPausesDuringMigration) {
  // The frozen burst makes no progress while the protocol runs.
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 2'000'000;
    co_await t.compute(10.0);
  });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("worker", 1, "host1");
    co_await sim::Delay(eng, 2.0);
    MigrationStats s = co_await mpvm.migrate(v[0], host2);
    // Right after migration, host2 has the burst, host1 does not.
    EXPECT_EQ(host1.cpu().job_count(), 0u);
    EXPECT_EQ(host2.cpu().job_count(), 1u);
    (void)s;
  };
  sim::spawn(eng, driver());
  run_all();
}

TEST_F(MpvmTest, LostFlushAckIsRetriedOnceBeforeCharging) {
  // A peer's workstation wedges just as the flush round goes out and stays
  // wedged past the first ack window — but not past the retry's.  One lost
  // ack must cost one flush retry, not the whole migration.
  mpvm.set_timeouts(MpvmTimeouts{.flush_ack = 0.5, .transfer = 30.0});
  bool victim_done = false, peer_done = false;
  const os::Host* victim_final = nullptr;
  // The peer greets the victim once so they are correspondents — the scoped
  // flush round only targets tasks the victim has exchanged messages with.
  vm.register_program("victim", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 100'000;
    co_await t.recv(kAny, 9);
    co_await t.compute(20.0);
    victim_done = true;
    victim_final = &t.pvmd().host();
  });
  vm.register_program("peer", [&](Task& t) -> sim::Co<void> {
    t.initsend().pk_int(1);
    co_await t.send(Tid::make(0, 1), 9);
    co_await t.compute(12.0);
    peer_done = true;
  });
  // Wedge the peer's workstation at the instant the flush round goes out
  // (the kFrozen stage notification fires synchronously just before it), and
  // thaw it 0.85 s later: past the first 0.5 s ack window, inside the
  // retry's, and still inside the datagram layer's 1 s retransmit budget.
  mpvm.add_stage_observer([&](pvm::Tid, MigrationStage s) {
    if (s != MigrationStage::kFrozen || sparc.frozen()) return;
    sparc.freeze();
    eng.schedule_in(0.85, [&] { sparc.unfreeze(); });
  });
  std::optional<MigrationStats> st;
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("victim", 1, "host1");
    co_await vm.spawn("peer", 1, "sparc1");
    co_await sim::Delay(eng, 1.0);
    st = co_await mpvm.migrate(v[0], host2);
  };
  sim::spawn(eng, driver());
  run_all();
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->ok);  // the retry saved the migration
  EXPECT_EQ(mpvm.flush_retries(), 1u);
  EXPECT_NE(vm.trace().find("mpvm", "stage=flush-retry"), nullptr);
  EXPECT_TRUE(victim_done);
  EXPECT_EQ(victim_final, &host2);
  EXPECT_TRUE(peer_done);
  EXPECT_EQ(mpvm.history().size(), 1u);
}

}  // namespace
}  // namespace cpe::mpvm
