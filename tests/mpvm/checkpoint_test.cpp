#include "mpvm/checkpoint.hpp"

#include <gtest/gtest.h>

#include "mpvm/mpvm.hpp"
#include "support/pvm_fixture.hpp"

namespace cpe::mpvm {
namespace {

using pvm::Task;
using pvm::Tid;

struct CkptTest : cpe::test::WorknetFixture {
  Mpvm mpvm{vm};  // installs the restart handlers the Checkpointer relies on
  Checkpointer ckpt{vm, sparc};  // the SPARC box doubles as ckpt server
};

TEST_F(CkptTest, PeriodicCheckpointsAreTakenAndCharged) {
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 500'000;
    co_await t.compute(100.0);
  });
  double finished = -1;
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("worker", 1, "host1");
    ckpt.watch(v[0]);
    co_await vm.wait_exit(v[0]);
    finished = eng.now();
  };
  sim::spawn(eng, driver());
  eng.run();
  const CheckpointStats* s = ckpt.stats_for(Tid::make(0, 1));
  ASSERT_NE(s, nullptr);
  EXPECT_GE(s->checkpoints_taken, 1);
  EXPECT_GT(s->total_checkpoint_time, 0.0);
  // The run stretches by exactly the checkpoint freeze time (plus epsilon).
  EXPECT_GT(finished, 100.0 + s->total_checkpoint_time * 0.9);
}

TEST_F(CkptTest, VacateIsFarLessObtrusiveThanMigration) {
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 2'000'000;
    co_await t.compute(300.0);
  });
  CkptVacateStats cs;
  MigrationStats ms;
  auto driver = [&]() -> sim::Proc {
    auto a = co_await vm.spawn("worker", 1, "host1");
    auto b = co_await vm.spawn("worker", 1, "host1");
    ckpt.watch(a[0]);
    co_await sim::Delay(eng, 70.0);  // at least one checkpoint exists
    cs = co_await ckpt.vacate_restart(a[0], host2);
    ms = co_await mpvm.migrate(b[0], host2);
  };
  sim::spawn(eng, driver());
  eng.run_until(500.0);
  // The paper's §5.0 claim, quantified: checkpointing vacates in
  // milliseconds; MPVM must first push 2 MB through the wire.
  EXPECT_LT(cs.obtrusiveness(), 0.01);
  EXPECT_GT(ms.obtrusiveness(), 1.0);
  EXPECT_GT(cs.redo_work, 0.0);  // but work since the checkpoint is lost
}

TEST_F(CkptTest, RestartReExecutesLostWork) {
  double finished = -1;
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 100'000;
    co_await t.compute(120.0);
    finished = eng.now();
  });
  CkptVacateStats cs;
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("worker", 1, "host1");
    ckpt.watch(v[0]);
    co_await sim::Delay(eng, 90.0);  // checkpoint at ~60; 30 s of loss
    cs = co_await ckpt.vacate_restart(v[0], host2);
  };
  sim::spawn(eng, driver());
  eng.run();
  EXPECT_NEAR(cs.redo_work, 30.0, 3.0);
  // Total runtime = 120 work + ~30 redo + freeze/restart overheads.
  EXPECT_GT(finished, 145.0);
}

TEST_F(CkptTest, MessagesStillFlowAfterCheckpointRestart) {
  std::vector<int> got;
  vm.register_program("sink", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 50'000;
    for (int i = 0; i < 10; ++i) {
      co_await t.recv(pvm::kAny, 1);
      got.push_back(t.rbuf().upk_int());
    }
  });
  vm.register_program("source", [&](Task& t) -> sim::Co<void> {
    for (int i = 0; i < 10; ++i) {
      t.initsend().pk_int(i);
      co_await t.send(Tid::make(0, 1), 1);
      co_await sim::Delay(eng, 12.0);
    }
  });
  auto driver = [&]() -> sim::Proc {
    auto sink = co_await vm.spawn("sink", 1, "host1");
    co_await vm.spawn("source", 1, "host2");
    ckpt.watch(sink[0]);
    co_await sim::Delay(eng, 65.0);
    co_await ckpt.vacate_restart(sink[0], host2);
  };
  sim::spawn(eng, driver());
  run_all();
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST_F(CkptTest, StaleEpochRecoveryIsFencedAndMovesNothing) {
  // A deposed leader ordering a checkpoint recovery is as dangerous as one
  // ordering a migration: the fence must bounce it before any state moves.
  auto fence = std::make_shared<pvm::MigrationFence>();
  ckpt.set_fence(fence);
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 100'000;
    co_await t.compute(200.0);
  });
  std::string stale_error;
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("worker", 1, "host1");
    ckpt.watch(v[0]);
    co_await sim::Delay(eng, 70.0);  // at least one checkpoint exists
    host1.crash();
    fence->raise(2);  // a new leader was elected meanwhile
    try {
      co_await ckpt.recover(v[0], host2, 1);  // the deposed leader's epoch
    } catch (const Error& e) {
      stale_error = e.what();
    }
    co_await ckpt.recover(v[0], host2, 2);  // the real leader's command
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_NE(stale_error.find("fenced: stale epoch"), std::string::npos);
  EXPECT_EQ(fence->rejected(), 1u);
  EXPECT_EQ(fence->admitted(), 1u);
  // Only the current leader's recovery landed.
  ASSERT_EQ(ckpt.vacate_history().size(), 1u);
  EXPECT_EQ(ckpt.vacate_history()[0].to_host, "host2");
}

TEST_F(CkptTest, ConcurrentRecoveriesOfOneTaskAreSingleFlight) {
  // Two recovery drivers race the same stranded task (a new leader
  // re-detecting the crash while its predecessor's recovery is still on the
  // wire): exactly one may resurrect it.
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 100'000;
    co_await t.compute(200.0);
  });
  int failures = 0;
  auto one_recovery = [&](Tid tid) -> sim::Proc {
    try {
      co_await ckpt.recover(tid, host2);
    } catch (const Error&) {
      ++failures;
    }
  };
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("worker", 1, "host1");
    ckpt.watch(v[0]);
    co_await sim::Delay(eng, 70.0);
    host1.crash();
    sim::spawn(eng, one_recovery(v[0]));
    sim::spawn(eng, one_recovery(v[0]));
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_EQ(failures, 1);
  ASSERT_EQ(ckpt.vacate_history().size(), 1u);
  EXPECT_FALSE(ckpt.recovering(Tid::make(0, 1)));
}

TEST_F(CkptTest, VacateUnwatchedTaskRefused) {
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    co_await t.compute(50.0);
  });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("worker", 1, "host1");
    co_await sim::Delay(eng, 1.0);
    co_await ckpt.vacate_restart(v[0], host2);
  };
  sim::spawn(eng, driver());
  EXPECT_THROW(eng.run(), ContractError);
}

}  // namespace
}  // namespace cpe::mpvm
