// End-to-end causal tracing through the MPVM migration protocol: one
// decision roots one trace, the four stages hang off it in order, failures
// leave rollback/fenced evidence, and the TraceAuditor signs off on all of
// it (DESIGN.md §10).
#include <gtest/gtest.h>

#include "mpvm/mpvm.hpp"
#include "obs/audit.hpp"
#include "support/pvm_fixture.hpp"

namespace cpe::mpvm {
namespace {

using pvm::Task;

struct MpvmTraceTest : cpe::test::WorknetFixture {
  Mpvm mpvm{vm};

  void register_worker(std::size_t data_bytes = 100'000) {
    vm.register_program("worker", [data_bytes](Task& t) -> sim::Co<void> {
      t.process().image().data_bytes = data_bytes;
      co_await t.compute(20.0);
    });
  }

  const obs::SpanRecord* stage_in(obs::TraceId trace,
                                  std::string_view name) const {
    for (const obs::SpanRecord* s : vm.spans().by_trace(trace))
      if (s->name == name) return s;
    return nullptr;
  }
};

TEST_F(MpvmTraceTest, MigrationProducesOneTraceWithOrderedStages) {
  register_worker();
  auto driver = [&]() -> sim::Proc {
    auto tids = co_await vm.spawn("worker", 1, "host1");
    co_await sim::Delay(eng, 5.0);
    MigrationStats s = co_await mpvm.migrate(tids[0], host2);
    EXPECT_TRUE(s.ok);
  };
  sim::spawn(eng, driver());
  run_all();

  const obs::SpanRecord* root = vm.spans().find_named("mpvm.migrate");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->status, obs::SpanStatus::kOk);
  ASSERT_NE(root->attr("task"), nullptr);
  EXPECT_EQ(*root->attr("from"), "host1");
  EXPECT_EQ(*root->attr("to"), "host2");

  // All four stages, parented under the root, in causal order, on the
  // right hosts (restart happens at the destination).
  const obs::SpanRecord* prev = nullptr;
  for (const char* name :
       {"mpvm.freeze", "mpvm.flush", "mpvm.transfer", "mpvm.restart"}) {
    const obs::SpanRecord* s = stage_in(root->trace_id, name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->parent_span, root->span_id) << name;
    EXPECT_EQ(s->status, obs::SpanStatus::kOk) << name;
    if (prev != nullptr) EXPECT_GE(s->start, prev->start) << name;
    prev = s;
  }
  EXPECT_EQ(stage_in(root->trace_id, "mpvm.freeze")->host, "host1");
  EXPECT_EQ(stage_in(root->trace_id, "mpvm.restart")->host, "host2");

  // One migration, one trace: every mpvm.* span belongs to it.
  for (const auto& s : vm.spans().spans())
    if (s.name.rfind("mpvm.", 0) == 0) EXPECT_EQ(s.trace_id, root->trace_id);

  obs::TraceAuditor auditor(vm.spans());
  EXPECT_TRUE(auditor.ok()) << obs::TraceAuditor::format(auditor.audit());
}

TEST_F(MpvmTraceTest, CallerContextRootsTheMigrationSpan) {
  register_worker();
  obs::SpanTracer& sp = vm.spans();
  obs::SpanId decision = 0;
  auto driver = [&]() -> sim::Proc {
    auto tids = co_await vm.spawn("worker", 1, "host1");
    co_await sim::Delay(eng, 5.0);
    decision = sp.begin_span({}, "gs.vacate", "gs");
    (void)co_await mpvm.migrate(tids[0], host2, std::nullopt,
                                sp.context_of(decision));
    sp.end_span(decision);
  };
  sim::spawn(eng, driver());
  run_all();

  const obs::SpanRecord* root = sp.find_named("mpvm.migrate");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_span, decision);
  EXPECT_EQ(root->trace_id, sp.find(decision)->trace_id);
}

TEST_F(MpvmTraceTest, AbortedMigrationEndsTraceWithRollback) {
  register_worker(5'000'000);  // ~4 s on the wire: the crash lands mid-copy
  auto driver = [&]() -> sim::Proc {
    auto tids = co_await vm.spawn("worker", 1, "host1");
    co_await sim::Delay(eng, 5.0);
    MigrationStats s = co_await mpvm.migrate(tids[0], host2);
    EXPECT_FALSE(s.ok);
  };
  sim::spawn(eng, driver());
  eng.schedule_at(6.0, [&] { host2.crash(); });
  run_all();

  const obs::SpanRecord* root = vm.spans().find_named("mpvm.migrate");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->status, obs::SpanStatus::kAborted);
  const obs::SpanRecord* rollback = stage_in(root->trace_id, "mpvm.rollback");
  ASSERT_NE(rollback, nullptr);
  EXPECT_TRUE(rollback->instant);
  EXPECT_NE(rollback->attr("reason"), nullptr);

  obs::TraceAuditor auditor(vm.spans());
  EXPECT_TRUE(auditor.ok()) << obs::TraceAuditor::format(auditor.audit());
}

TEST_F(MpvmTraceTest, FencedCommandLeavesFencedSpan) {
  register_worker();
  auto fence = std::make_shared<pvm::MigrationFence>();
  fence->raise(5);
  mpvm.set_fence(fence);
  bool threw = false;
  auto driver = [&]() -> sim::Proc {
    auto tids = co_await vm.spawn("worker", 1, "host1");
    co_await sim::Delay(eng, 5.0);
    try {
      (void)co_await mpvm.migrate(tids[0], host2, /*epoch=*/3);
    } catch (const MigrationError&) {
      threw = true;
    }
  };
  sim::spawn(eng, driver());
  run_all();

  EXPECT_TRUE(threw);
  const obs::SpanRecord* root = vm.spans().find_named("mpvm.migrate");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->status, obs::SpanStatus::kFenced);
  ASSERT_NE(root->attr("floor"), nullptr);
  EXPECT_EQ(*root->attr("floor"), "5");

  obs::TraceAuditor auditor(vm.spans());
  EXPECT_TRUE(auditor.ok()) << obs::TraceAuditor::format(auditor.audit());
}

}  // namespace
}  // namespace cpe::mpvm
