// Concurrent-safe migration machinery (DESIGN.md §12): scoped flush,
// frozen-correspondent ack substitution, residual forwarding with fencing
// epochs, incremental (pre-copy) transfer, and externally requested aborts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "mpvm/mpvm.hpp"
#include "obs/audit.hpp"
#include "support/pvm_fixture.hpp"

namespace cpe::mpvm {
namespace {

using pvm::kAny;
using pvm::Task;
using pvm::Tid;

struct ConcurrentMigrationTest : cpe::test::WorknetFixture {
  Mpvm mpvm{vm};

  void expect_audit_clean() {
    const obs::TraceAuditor auditor(vm.spans());
    EXPECT_TRUE(auditor.ok()) << obs::TraceAuditor::format(auditor.audit());
  }
};

TEST_F(ConcurrentMigrationTest, FlushIsScopedToCorrespondents) {
  // The victim talked to exactly one peer; two bystanders chat between
  // themselves.  The flush round must touch only the correspondent — the
  // recorded scope is 1, not "everyone else in the machine".
  vm.register_program("victim", [&](Task& t) -> sim::Co<void> {
    co_await t.recv(kAny, 9);
    co_await t.compute(15.0);
  });
  vm.register_program("corr", [&](Task& t) -> sim::Co<void> {
    t.initsend().pk_int(1);
    co_await t.send(Tid::make(0, 1), 9);
    co_await t.compute(12.0);
  });
  vm.register_program("bystander_a", [&](Task& t) -> sim::Co<void> {
    t.initsend().pk_int(2);
    co_await t.send(Tid::make(2, 1), 4);
    co_await t.compute(10.0);
  });
  vm.register_program("bystander_b", [&](Task& t) -> sim::Co<void> {
    co_await t.recv(kAny, 4);
    co_await t.compute(10.0);
  });
  std::optional<MigrationStats> st;
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("victim", 1, "host1");
    co_await vm.spawn("corr", 1, "host2");
    co_await vm.spawn("bystander_b", 1, "sparc1");  // t2.2
    co_await vm.spawn("bystander_a", 1, "sparc1");
    co_await sim::Delay(eng, 5.0);
    st = co_await mpvm.migrate(v[0], host2);
  };
  sim::spawn(eng, driver());
  run_all();
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->ok) << st->failure;
  auto& scope = vm.metrics().histogram("mpvm.flush.scope");
  EXPECT_EQ(scope.count(), 1u);
  EXPECT_DOUBLE_EQ(scope.mean(), 1.0);  // the correspondent, nobody else
  expect_audit_clean();
}

TEST_F(ConcurrentMigrationTest, ConcurrentMigrationsSubstituteFrozenAcks) {
  // Two correspondents migrate simultaneously in opposite directions.  Each
  // one's flush finds the other frozen; the frozen side's mpvmd stub closes
  // the gate and acks in its stead, so neither migration waits on a peer
  // that cannot answer — the historic cross-flush deadlock cannot form.
  vm.register_program("pa", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 500'000;
    co_await sim::Delay(eng, 1.0);  // let pb enroll before greeting it
    t.initsend().pk_int(1);
    co_await t.send(Tid::make(1, 1), 9);
    co_await t.recv(kAny, 9);
    co_await t.compute(20.0);
  });
  vm.register_program("pb", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 500'000;
    co_await t.recv(kAny, 9);
    t.initsend().pk_int(2);
    co_await t.send(Tid::make(0, 1), 9);
    co_await t.compute(20.0);
  });
  std::optional<MigrationStats> sa, sb;
  auto mig_a = [&](Tid v) -> sim::Proc { sa = co_await mpvm.migrate(v, host2); };
  auto mig_b = [&](Tid v) -> sim::Proc { sb = co_await mpvm.migrate(v, host1); };
  auto driver = [&]() -> sim::Proc {
    auto a = co_await vm.spawn("pa", 1, "host1");
    auto b = co_await vm.spawn("pb", 1, "host2");
    co_await sim::Delay(eng, 5.0);
    sim::spawn(eng, mig_a(a[0]));
    sim::spawn(eng, mig_b(b[0]));
  };
  sim::spawn(eng, driver());
  run_all();
  ASSERT_TRUE(sa.has_value());
  ASSERT_TRUE(sb.has_value());
  EXPECT_TRUE(sa->ok) << sa->failure;
  EXPECT_TRUE(sb->ok) << sb->failure;
  EXPECT_GE(vm.metrics().counter("mpvm.flush.acks_substituted").value(), 1u);
  expect_audit_clean();
}

TEST_F(ConcurrentMigrationTest, SubstitutionOffReproducesCrossFlushDeadlock) {
  // The regression the redesign exists for: with substitution disabled, two
  // overlapping migrations each wait on a flush ack the other (frozen) task
  // can never send.  Both time out and roll back — the tasks survive, but
  // no migration makes progress.
  MpvmTuning tuning;
  tuning.ack_substitution = false;
  mpvm.set_tuning(tuning);
  mpvm.set_timeouts({.flush_ack = 1.0, .transfer = 30.0});
  vm.register_program("pa", [&](Task& t) -> sim::Co<void> {
    co_await sim::Delay(eng, 1.0);  // let pb enroll before greeting it
    t.initsend().pk_int(1);
    co_await t.send(Tid::make(1, 1), 9);
    co_await t.recv(kAny, 9);
    co_await t.compute(20.0);
  });
  vm.register_program("pb", [&](Task& t) -> sim::Co<void> {
    co_await t.recv(kAny, 9);
    t.initsend().pk_int(2);
    co_await t.send(Tid::make(0, 1), 9);
    co_await t.compute(20.0);
  });
  std::optional<MigrationStats> sa, sb;
  auto mig_a = [&](Tid v) -> sim::Proc { sa = co_await mpvm.migrate(v, host2); };
  auto mig_b = [&](Tid v) -> sim::Proc { sb = co_await mpvm.migrate(v, host1); };
  auto driver = [&]() -> sim::Proc {
    auto a = co_await vm.spawn("pa", 1, "host1");
    auto b = co_await vm.spawn("pb", 1, "host2");
    co_await sim::Delay(eng, 5.0);
    sim::spawn(eng, mig_a(a[0]));
    sim::spawn(eng, mig_b(b[0]));
  };
  sim::spawn(eng, driver());
  run_all();
  ASSERT_TRUE(sa.has_value());
  ASSERT_TRUE(sb.has_value());
  EXPECT_FALSE(sa->ok);
  EXPECT_FALSE(sb->ok);
  EXPECT_NE(sa->failure.find("flush"), std::string::npos) << sa->failure;
  EXPECT_GE(vm.metrics().counter("mpvm.flush.deferred_frozen").value(), 2u);
  EXPECT_TRUE(mpvm.history().empty());
  expect_audit_clean();  // both rollbacks recorded
}

TEST_F(ConcurrentMigrationTest, ResidualMessagesForwardedThenRoutedDirect) {
  // A task outside the flush scope never hears the restart broadcast; its
  // first post-move send bounces off the old host's forwarding stub (and is
  // delivered), and the stub teaches it the new mapping so the second send
  // goes direct.
  std::vector<int> got;
  vm.register_program("victim", [&](Task& t) -> sim::Co<void> {
    for (int i = 0; i < 2; ++i) {
      co_await t.recv(kAny, 5);
      got.push_back(t.rbuf().upk_int());
    }
  });
  vm.register_program("stranger", [&](Task& t) -> sim::Co<void> {
    co_await sim::Delay(eng, 10.0);  // migration finished around t=6
    t.initsend().pk_int(1);
    co_await t.send(Tid::make(0, 1), 5);  // stale mapping: bounces off host1
    co_await sim::Delay(eng, 2.0);        // route update has arrived by now
    t.initsend().pk_int(2);
    co_await t.send(Tid::make(0, 1), 5);  // goes direct
  });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("victim", 1, "host1");
    co_await vm.spawn("stranger", 1, "host2");
    co_await sim::Delay(eng, 5.0);
    const MigrationStats st = co_await mpvm.migrate(v[0], host2);
    EXPECT_TRUE(st.ok) << st.failure;
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));  // nothing lost or duplicated
  EXPECT_EQ(vm.metrics().counter("mpvm.residual.forwarded").value(), 1u);
  EXPECT_EQ(vm.metrics().counter("mpvm.residual.route_updates").value(), 1u);
  expect_audit_clean();
}

// One full residual-forwarding scenario with a configurable window: victim
// migrates at t=5, a stranger with a stale mapping sends once at t=10.  The
// victim uses a timed receive so the expired-stub (dropped message) variant
// still drains the event queue.
struct ResidualRun {
  std::uint64_t forwarded = 0;
  std::uint64_t route_updates = 0;
  std::size_t got = 0;
  double install_tick = -1;  // when the stub armed (expires - window)
  double fwd_tick = -1;      // when the stale send hit the old host
};

ResidualRun run_residual(double window) {
  ResidualRun out;
  sim::Engine eng;
  net::Network net{eng};
  os::Host host1{eng, net, os::HostConfig("host1", "HPPA", 1.0)};
  os::Host host2{eng, net, os::HostConfig("host2", "HPPA", 1.0)};
  pvm::PvmSystem vm{eng, net};
  vm.add_host(host1);
  vm.add_host(host2);
  Mpvm mpvm{vm};
  MpvmTuning tuning;
  tuning.residual_window = window;
  mpvm.set_tuning(tuning);
  vm.register_program("victim", [&](Task& t) -> sim::Co<void> {
    if (co_await t.trecv(kAny, 5, 40.0)) ++out.got;
  });
  vm.register_program("stranger", [&](Task& t) -> sim::Co<void> {
    co_await sim::Delay(eng, 10.0);  // migration finished around t=6
    t.initsend().pk_int(1);
    co_await t.send(Tid::make(0, 1), 5);  // stale mapping: bounces off host1
    co_await sim::Delay(eng, 2.0);        // stay alive for the route update
  });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("victim", 1, "host1");
    co_await vm.spawn("stranger", 1, "host2");
    co_await sim::Delay(eng, 5.0);
    const MigrationStats st = co_await mpvm.migrate(v[0], host2);
    EXPECT_TRUE(st.ok) << st.failure;
  };
  sim::spawn(eng, driver());
  eng.run();
  out.forwarded = vm.metrics().counter("mpvm.residual.forwarded").value();
  out.route_updates =
      vm.metrics().counter("mpvm.residual.route_updates").value();
  // The stub arms one reenroll delay after the restart stage opens
  // (mpvm.cpp stage 4) — recover that tick from the stage span.
  if (const obs::SpanRecord* restart = vm.spans().find_named("mpvm.restart"))
    out.install_tick = restart->start + vm.costs().mpvm.reenroll;
  if (const obs::SpanRecord* fwd =
          vm.spans().find_named("mpvm.residual.forward"))
    out.fwd_tick = fwd->start;
  return out;
}

TEST_F(ConcurrentMigrationTest, ResidualAtExactExpiryForwardsOneTickLaterDrops) {
  // The expiry check is strict (`now > expires`): a message landing exactly
  // when the window runs out is still forwarded; only strictly-later
  // arrivals find the stub gone.  Calibrate with a pilot run (the engine is
  // deterministic, so the stale send hits the old host at the same tick in
  // every run), then pin the window so expiry lands on that very tick.
  const ResidualRun pilot = run_residual(30.0);
  ASSERT_EQ(pilot.forwarded, 1u);
  ASSERT_EQ(pilot.got, 1u);
  ASSERT_GT(pilot.fwd_tick, pilot.install_tick);
  // Smallest window whose expiry is at-or-past the forward tick: rounding of
  // install + window must not land short of it.
  double at = pilot.fwd_tick - pilot.install_tick;
  while (pilot.install_tick + at < pilot.fwd_tick)
    at = std::nextafter(at, std::numeric_limits<double>::infinity());
  while (true) {
    const double tighter = std::nextafter(at, 0.0);
    if (pilot.install_tick + tighter < pilot.fwd_tick) break;
    at = tighter;
  }
  const ResidualRun boundary = run_residual(at);
  EXPECT_EQ(boundary.forwarded, 1u);  // now == expires: still in the window
  EXPECT_EQ(boundary.route_updates, 1u);  // stub taught the stale sender
  EXPECT_EQ(boundary.got, 1u);
  EXPECT_EQ(boundary.fwd_tick, pilot.fwd_tick);  // determinism held
  // One representable tick shorter and the same arrival is past expiry: the
  // stub evicts itself — the daemon's permanent routing table still delivers
  // the message, but nothing counts it and the sender is never taught the
  // new mapping (it keeps bouncing off the old host).
  const ResidualRun expired = run_residual(std::nextafter(at, 0.0));
  EXPECT_EQ(expired.forwarded, 0u);
  EXPECT_EQ(expired.route_updates, 0u);
  EXPECT_EQ(expired.got, 1u);
}

TEST_F(ConcurrentMigrationTest, DuplicatedFlushAcksCannotDerailTheProtocol) {
  // Every datagram duplicated from just before the migration: flush
  // requests, flush acks, restart broadcasts, route updates all arrive
  // twice.  The ack round is keyed by a per-round stamp and a set of
  // responders, so a replayed ack neither double-counts toward the quorum
  // nor completes a later round early — the migration succeeds exactly once
  // and both correspondents' messages come through exactly once.
  std::vector<int> got;
  vm.register_program("victim", [&](Task& t) -> sim::Co<void> {
    for (int i = 0; i < 4; ++i) {
      co_await t.recv(kAny, 9);
      got.push_back(t.rbuf().upk_int());
    }
  });
  vm.register_program("corr", [&](Task& t) -> sim::Co<void> {
    t.initsend().pk_int(t.tid().raw());
    co_await t.send(Tid::make(0, 1), 9);  // makes us a correspondent
    co_await sim::Delay(eng, 6.0);        // lands mid/post-migration
    t.initsend().pk_int(-t.tid().raw());
    co_await t.send(Tid::make(0, 1), 9);
  });
  std::optional<MigrationStats> st;
  std::vector<Tid> corrs;
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("victim", 1, "host1");
    corrs = co_await vm.spawn("corr", 1, "host2");
    auto more = co_await vm.spawn("corr", 1, "sparc1");
    corrs.push_back(more[0]);
    co_await sim::Delay(eng, 5.0);
    st = co_await mpvm.migrate(v[0], host2);
  };
  eng.schedule_at(4.5, [&] {  // spawns done, flush round not yet started
    net.set_adversary({.duplicate_probability = 1.0});
  });
  sim::spawn(eng, driver());
  run_all();
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->ok) << st->failure;
  EXPECT_EQ(mpvm.history().size(), 1u);
  EXPECT_GT(net.datagrams().duplicates_injected(), 0u);
  // Exactly one flush round, scoped to the two correspondents — a
  // double-counted replay would have closed the round at scope 1.
  auto& scope = vm.metrics().histogram("mpvm.flush.scope");
  EXPECT_EQ(scope.count(), 1u);
  EXPECT_DOUBLE_EQ(scope.mean(), 2.0);
  // Each correspondent's pre- and post-move message arrived exactly once.
  ASSERT_EQ(corrs.size(), 2u);
  std::vector<int> want;
  for (const Tid c : corrs) {
    want.push_back(c.raw());
    want.push_back(-c.raw());
  }
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
  expect_audit_clean();
}

TEST_F(ConcurrentMigrationTest, MappingEpochFencingDropsStaleUpdates) {
  vm.register_program("noop", [](Task&) -> sim::Co<void> { co_return; });
  auto body = [&]() -> sim::Proc { co_await vm.spawn("noop", 2); };
  sim::spawn(eng, body());
  run_all();
  Task* t = vm.all_tasks().front();
  const Tid moved = Tid::make(0, 2);
  // A newer relocation's mapping installs; an older one must not regress it.
  EXPECT_TRUE(t->learn_mapping(moved, Tid::make(1, 5), 2));
  EXPECT_FALSE(t->learn_mapping(moved, Tid::make(2, 7), 1));
  EXPECT_EQ(t->translate(moved), Tid::make(1, 5));
  EXPECT_EQ(t->mapping_epoch(moved), 2u);
  // Same epoch may re-install (an idempotent re-broadcast).
  EXPECT_TRUE(t->learn_mapping(moved, Tid::make(1, 5), 2));
}

TEST_F(ConcurrentMigrationTest, PrecopyShrinksTheFreezeWindow) {
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 4'000'000;
    co_await t.compute(40.0);
  });
  std::optional<MigrationStats> stop_copy, precopy;
  auto driver = [&]() -> sim::Proc {
    auto w = co_await vm.spawn("worker", 2, "host1");
    co_await sim::Delay(eng, 2.0);
    stop_copy = co_await mpvm.migrate(w[0], host2);
    MpvmTuning tuning;
    tuning.precopy = true;
    tuning.dirty_rate_bps = 0.1e6 * 8;  // lightly-dirtying worker
    mpvm.set_tuning(tuning);
    precopy = co_await mpvm.migrate(w[1], host2);
  };
  sim::spawn(eng, driver());
  run_all();
  ASSERT_TRUE(stop_copy.has_value());
  ASSERT_TRUE(precopy.has_value());
  EXPECT_TRUE(stop_copy->ok) << stop_copy->failure;
  EXPECT_TRUE(precopy->ok) << precopy->failure;
  EXPECT_EQ(stop_copy->precopy_bytes, 0u);
  // The whole image streamed while the task ran; only the dirty residue
  // (far smaller) crossed under freeze, so the user-visible stall shrank.
  EXPECT_GE(precopy->precopy_bytes, 4'000'000u);
  EXPECT_LT(precopy->residue_bytes, precopy->precopy_bytes / 4);
  EXPECT_LT(precopy->freeze_window(), 0.5 * stop_copy->freeze_window());
  expect_audit_clean();  // every pre-copy chunk span closed, correctly nested
}

TEST_F(ConcurrentMigrationTest, PrecopyFailureFallsBackToStopAndCopy) {
  MpvmTuning tuning;
  tuning.precopy = true;
  mpvm.set_tuning(tuning);
  int spawn_calls = 0;
  mpvm.set_skeleton_spawn_hook([&](Tid, os::Host&) {
    return ++spawn_calls > 1;  // the early (pre-copy) skeleton fails
  });
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 1'000'000;
    co_await t.compute(20.0);
  });
  std::optional<MigrationStats> st;
  auto driver = [&]() -> sim::Proc {
    auto w = co_await vm.spawn("worker", 1, "host1");
    co_await sim::Delay(eng, 2.0);
    st = co_await mpvm.migrate(w[0], host2);
  };
  sim::spawn(eng, driver());
  run_all();
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->ok) << st->failure;  // fell back, still migrated
  EXPECT_EQ(st->precopy_bytes, 0u);
  EXPECT_EQ(st->residue_bytes, st->state_bytes);  // full stop-and-copy
  EXPECT_EQ(vm.metrics().counter("mpvm.precopy.failed").value(), 1u);
  EXPECT_EQ(spawn_calls, 2);
  expect_audit_clean();
}

TEST_F(ConcurrentMigrationTest, RequestAbortRollsBackMidTransfer) {
  vm.register_program("worker", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 10'000'000;  // ~10 s transfer
    co_await t.compute(20.0);
    EXPECT_EQ(&t.pvmd().host(), &host1);  // rolled back, never moved
  });
  std::optional<MigrationStats> st;
  Tid victim;
  auto driver = [&]() -> sim::Proc {
    auto w = co_await vm.spawn("worker", 1, "host1");
    victim = w[0];
    co_await sim::Delay(eng, 5.0);
    st = co_await mpvm.migrate(victim, host2);
  };
  auto watchdog = [&]() -> sim::Proc {
    co_await sim::Delay(eng, 7.0);  // mid-transfer
    EXPECT_TRUE(mpvm.request_abort(victim, "watchdog test"));
    EXPECT_FALSE(mpvm.request_abort(victim, "double"));  // already requested
  };
  sim::spawn(eng, driver());
  sim::spawn(eng, watchdog());
  run_all();
  ASSERT_TRUE(st.has_value());
  EXPECT_FALSE(st->ok);
  EXPECT_NE(st->failure.find("watchdog test"), std::string::npos)
      << st->failure;
  EXPECT_EQ(vm.metrics().counter("mpvm.migrations.abort_requested").value(),
            1u);
  EXPECT_TRUE(mpvm.history().empty());
  // No migration pending anymore: a late abort request finds nothing.
  EXPECT_FALSE(mpvm.request_abort(victim, "late"));
  expect_audit_clean();  // the aborted migrate span has its rollback child
}

}  // namespace
}  // namespace cpe::mpvm
