// MPVM stress scenarios: large messages in flight, mcast across migration,
// many tasks, GS interplay.
#include <gtest/gtest.h>

#include "mpvm/mpvm.hpp"
#include "support/pvm_fixture.hpp"

namespace cpe::mpvm {
namespace {

using pvm::kAny;
using pvm::Message;
using pvm::Task;
using pvm::Tid;

struct MpvmStress : cpe::test::WorknetFixture {
  Mpvm mpvm{vm};
};

TEST_F(MpvmStress, LargeMessageInFlightDuringMigrationIsForwarded) {
  // A multi-second 2 MB message is on the wire toward the victim when the
  // migration starts; the flush ack trails it (FIFO), so it arrives before
  // transfer; nothing is lost.
  std::size_t got_floats = 0;
  vm.register_program("victim", [&](Task& t) -> sim::Co<void> {
    co_await t.recv(kAny, 1);
    got_floats = t.rbuf().next_count();
  });
  vm.register_program("sender", [&](Task& t) -> sim::Co<void> {
    co_await sim::Delay(eng, 2.0);
    t.initsend().pk_float(std::vector<float>(500'000, 1.0f));  // 2 MB
    co_await t.send(Tid::make(0, 1), 1);
  });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("victim", 1, "host1");
    co_await vm.spawn("sender", 1, "host2");
    co_await sim::Delay(eng, 3.0);  // the 2 MB send is mid-wire now
    co_await mpvm.migrate(v[0], host2);
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_EQ(got_floats, 500'000u);
}

TEST_F(MpvmStress, McastFromVictimAfterMigrationUsesNewLocation) {
  int received = 0;
  vm.register_program("leaf", [&](Task& t) -> sim::Co<void> {
    co_await t.recv(kAny, 5);
    ++received;
  });
  vm.register_program("root", [&](Task& t) -> sim::Co<void> {
    std::vector<Tid> kids = co_await t.spawn("leaf", 3);
    co_await t.compute(10.0);  // migration happens in here
    t.initsend().pk_int(1);
    co_await t.mcast(kids, 5);
  });
  auto driver = [&]() -> sim::Proc {
    auto r = co_await vm.spawn("root", 1, "host1");
    co_await sim::Delay(eng, 4.0);
    co_await mpvm.migrate(r[0], host2);
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_EQ(received, 3);
}

TEST_F(MpvmStress, EightTaskRingSurvivesRollingMigrations) {
  // A token circulates a ring of 8 tasks while every task on host1 is
  // migrated to host2 one by one.  The token must complete all laps.
  constexpr int kTasks = 8;
  constexpr int kLaps = 6;
  int final_hops = 0;
  std::vector<Tid> ring;
  vm.register_program("ring2", [&](Task& t) -> sim::Co<void> {
    for (;;) {
      Message m = co_await t.recv(kAny, 1);
      (void)m;
      const int hops = t.rbuf().upk_int();
      if (hops >= kTasks * kLaps) {
        final_hops = hops;
        break;
      }
      // Pass to the next task in the ring.
      Tid next;
      for (std::size_t i = 0; i < ring.size(); ++i)
        if (ring[i] == t.tid()) next = ring[(i + 1) % ring.size()];
      t.initsend().pk_int(hops + 1);
      co_await t.send(next, 1);
    }
  });
  auto driver = [&]() -> sim::Proc {
    ring = co_await vm.spawn("ring2", kTasks);
    // Inject the token.
    pvm::Task* t0 = vm.find_logical(ring[0]);
    pvm::Buffer b;
    b.pk_int(0);
    t0->runtime_send(ring[0], 1, std::move(b));
    // Rolling migrations of host1 residents.
    co_await sim::Delay(eng, 0.5);
    for (Tid tid : ring) {
      pvm::Task* t = vm.find_logical(tid);
      if (t->exited() || &t->pvmd().host() != &host1) continue;
      try {
        co_await mpvm.migrate(tid, host2);
      } catch (const MigrationError&) {
        // Token may have finished mid-flight; that is fine.
      }
      co_await sim::Delay(eng, 0.2);
    }
  };
  sim::spawn(eng, driver());
  eng.run();
  EXPECT_EQ(final_hops, kTasks * kLaps);

  // Exactly one task broke the loop; terminate the rest for clean teardown.
  for (Tid tid : ring) (void)vm.kill(tid);
  eng.run();
}

TEST_F(MpvmStress, BackToBackMigrationsOfSameTask) {
  double finished = -1;
  vm.register_program("hopper", [&](Task& t) -> sim::Co<void> {
    t.process().image().data_bytes = 80'000;
    co_await t.compute(30.0);
    finished = eng.now();
  });
  auto driver = [&]() -> sim::Proc {
    auto v = co_await vm.spawn("hopper", 1, "host1");
    for (int i = 0; i < 4; ++i) {
      co_await sim::Delay(eng, 1.0);
      co_await mpvm.migrate(v[0], i % 2 == 0 ? host2 : host1);
    }
  };
  sim::spawn(eng, driver());
  run_all();
  EXPECT_GT(finished, 30.0);
  EXPECT_EQ(mpvm.history().size(), 4u);
}

}  // namespace
}  // namespace cpe::mpvm
