#include "adm/fsm.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace cpe::adm {
namespace {

struct FsmTest : ::testing::Test {
  sim::Engine eng;
  sim::TraceLog trace{eng};

  Fsm make_opt_fsm() {
    // The Figure 4 structure: compute / redistribute / inactive / done.
    Fsm f(trace, "slave0", "computing");
    f.add_state("redistributing");
    f.add_state("inactive");
    f.add_state("done");
    f.allow("computing", "redistributing");
    f.allow("redistributing", "computing");
    f.allow("redistributing", "inactive");
    f.allow("inactive", "redistributing");
    f.allow("computing", "done");
    return f;
  }
};

TEST_F(FsmTest, StartsInInitialState) {
  Fsm f = make_opt_fsm();
  EXPECT_EQ(f.state(), "computing");
  EXPECT_TRUE(f.path().empty());
}

TEST_F(FsmTest, LegalTransitionsSucceed) {
  Fsm f = make_opt_fsm();
  f.transition("redistributing");
  f.transition("inactive");
  f.transition("redistributing");
  f.transition("computing");
  f.transition("done");
  EXPECT_EQ(f.state(), "done");
  EXPECT_EQ(f.path().size(), 5u);
}

TEST_F(FsmTest, IllegalTransitionThrows) {
  Fsm f = make_opt_fsm();
  EXPECT_THROW(f.transition("inactive"), Error);  // computing -/-> inactive
  EXPECT_EQ(f.state(), "computing");              // unchanged after failure
}

TEST_F(FsmTest, UnknownStateInAllowThrows) {
  Fsm f = make_opt_fsm();
  EXPECT_THROW(f.allow("computing", "nirvana"), ContractError);
}

TEST_F(FsmTest, CanTransitionQueries) {
  Fsm f = make_opt_fsm();
  EXPECT_TRUE(f.can_transition("redistributing"));
  EXPECT_FALSE(f.can_transition("inactive"));
}

TEST_F(FsmTest, TransitionsAreTraced) {
  Fsm f = make_opt_fsm();
  f.transition("redistributing");
  EXPECT_NE(trace.find("adm.fsm", "computing -> redistributing"), nullptr);
  EXPECT_NE(trace.find("adm.fsm", "slave0"), nullptr);
}

TEST_F(FsmTest, WithdrawRejoinCycle) {
  // A slave can cycle through inactivity repeatedly (owner leaves/returns).
  Fsm f = make_opt_fsm();
  for (int i = 0; i < 3; ++i) {
    f.transition("redistributing");
    f.transition("inactive");
    f.transition("redistributing");
    f.transition("computing");
  }
  EXPECT_EQ(f.state(), "computing");
  EXPECT_EQ(trace.count("adm.fsm"), 12u);
}

}  // namespace
}  // namespace cpe::adm
