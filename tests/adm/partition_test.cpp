#include "adm/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace cpe::adm {
namespace {

std::size_t sum(const std::vector<std::size_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::size_t{0});
}

TEST(EqualShares, DividesEvenly) {
  EXPECT_EQ(equal_shares(12, 3), (std::vector<std::size_t>{4, 4, 4}));
}

TEST(EqualShares, RemainderSpreadByAtMostOne) {
  auto s = equal_shares(14, 4);
  EXPECT_EQ(s, (std::vector<std::size_t>{4, 4, 3, 3}));
  EXPECT_EQ(sum(s), 14u);
}

TEST(EqualShares, FewerItemsThanSlaves) {
  auto s = equal_shares(2, 5);
  EXPECT_EQ(sum(s), 2u);
  for (std::size_t x : s) EXPECT_LE(x, 1u);
}

TEST(EqualShares, ZeroItems) {
  EXPECT_EQ(sum(equal_shares(0, 3)), 0u);
}

TEST(WeightedShares, ProportionalSplit) {
  const double w[] = {1.0, 3.0};
  auto s = weighted_shares(100, w);
  EXPECT_EQ(s, (std::vector<std::size_t>{25, 75}));
}

TEST(WeightedShares, ZeroWeightGetsNothing) {
  // A withdrawn slave has weight 0 and must end with exactly zero items.
  const double w[] = {1.0, 0.0, 1.0};
  auto s = weighted_shares(101, w);
  EXPECT_EQ(s[1], 0u);
  EXPECT_EQ(sum(s), 101u);
}

TEST(WeightedShares, RoundingConservesTotal) {
  const double w[] = {1.0, 1.0, 1.0};
  for (std::size_t total : {1u, 2u, 7u, 100u, 1001u}) {
    auto s = weighted_shares(total, w);
    EXPECT_EQ(sum(s), total);
  }
}

TEST(WeightedShares, HeterogeneousSpeeds) {
  // §3.4.3: data allotted to heterogeneous processors at whatever precision
  // the application wants — here proportional to host speed.
  const double w[] = {1.0, 0.8, 2.0};
  auto s = weighted_shares(3800, w);
  EXPECT_EQ(sum(s), 3800u);
  EXPECT_EQ(s[0], 1000u);
  EXPECT_EQ(s[1], 800u);
  EXPECT_EQ(s[2], 2000u);
}

TEST(WeightedShares, AllWeightOnOne) {
  const double w[] = {0.0, 5.0};
  auto s = weighted_shares(9, w);
  EXPECT_EQ(s, (std::vector<std::size_t>{0, 9}));
}

TEST(PlanMoves, IdentityNeedsNoMoves) {
  const std::size_t cur[] = {5, 5, 5};
  EXPECT_TRUE(plan_moves(cur, cur).empty());
}

TEST(PlanMoves, WithdrawFragmentsAcrossReceivers) {
  // The withdrawing slave's data is "fragmented and sent to several other
  // processes" (§4.3).
  const std::size_t cur[] = {9, 3, 3};
  const std::size_t tgt[] = {0, 7, 8};
  auto moves = plan_moves(cur, tgt);
  ASSERT_EQ(moves.size(), 2u);
  EXPECT_EQ(moves[0], Transfer(0, 1, 4));
  EXPECT_EQ(moves[1], Transfer(0, 2, 5));
}

TEST(PlanMoves, MultipleDonorsOneAcceptor) {
  const std::size_t cur[] = {6, 6, 0};
  const std::size_t tgt[] = {4, 4, 4};
  auto moves = plan_moves(cur, tgt);
  ASSERT_EQ(moves.size(), 2u);
  EXPECT_EQ(moves[0], Transfer(0, 2, 2));
  EXPECT_EQ(moves[1], Transfer(1, 2, 2));
}

TEST(PlanMoves, ConservesItems) {
  const std::size_t cur[] = {10, 0, 7, 3};
  const std::size_t tgt[] = {2, 8, 5, 5};
  auto moves = plan_moves(cur, tgt);
  std::vector<std::size_t> state(cur, cur + 4);
  for (const Transfer& t : moves) {
    ASSERT_GE(state[static_cast<std::size_t>(t.from)], t.count);
    state[static_cast<std::size_t>(t.from)] -= t.count;
    state[static_cast<std::size_t>(t.to)] += t.count;
  }
  EXPECT_EQ(state, (std::vector<std::size_t>{2, 8, 5, 5}));
}

TEST(PlanMoves, MismatchedTotalsThrow) {
  const std::size_t cur[] = {5, 5};
  const std::size_t tgt[] = {5, 6};
  EXPECT_THROW((void)plan_moves(cur, tgt), ContractError);
}

TEST(PlanMoves, AtMostNMinusOneTransfers) {
  for (int seed = 0; seed < 20; ++seed) {
    // Pseudo-random partitions of 1000 items over 8 slaves.
    std::vector<std::size_t> cur(8, 0), tgt(8, 0);
    std::size_t r = static_cast<std::size_t>(seed) * 2654435761u;
    std::size_t total = 1000, acc = 0;
    for (int i = 0; i < 7; ++i) {
      r = r * 6364136223846793005ull + 1442695040888963407ull;
      cur[static_cast<std::size_t>(i)] = r % (total - acc + 1);
      acc += cur[static_cast<std::size_t>(i)];
    }
    cur[7] = total - acc;
    acc = 0;
    for (int i = 0; i < 7; ++i) {
      r = r * 6364136223846793005ull + 1442695040888963407ull;
      tgt[static_cast<std::size_t>(i)] = r % (total - acc + 1);
      acc += tgt[static_cast<std::size_t>(i)];
    }
    tgt[7] = total - acc;
    auto moves = plan_moves(cur, tgt);
    EXPECT_LE(moves.size(), 7u);
  }
}

}  // namespace
}  // namespace cpe::adm
