#include "adm/events.hpp"

#include <gtest/gtest.h>

#include "support/pvm_fixture.hpp"

namespace cpe::adm {
namespace {

using pvm::Task;
using pvm::Tid;

struct AdmEventsTest : cpe::test::WorknetFixture {};

TEST(AdmEvent, EncodeDecodeRoundTrip) {
  const AdmEvent ev(AdmEventKind::kWithdraw, 3);
  EXPECT_EQ(AdmEvent::decode(ev.encode()), ev);
  const AdmEvent rb(AdmEventKind::kRebalance, -1);
  EXPECT_EQ(AdmEvent::decode(rb.encode()), rb);
}

TEST_F(AdmEventsTest, EventArrivesWhileTaskComputes) {
  // Delivery is asynchronous: the handler queues the event while the
  // application is deep in its compute loop.
  std::size_t seen_mid_compute = 0;
  vm.register_program("slave", [&](Task& t) -> sim::Co<void> {
    EventQueue q(t);
    co_await t.compute(5.0);  // event lands at t~2 during this burst
    seen_mid_compute = q.pending();
    EXPECT_EQ(q.take()->kind, AdmEventKind::kWithdraw);
  });
  vm.register_program("gs", [&](Task& t) -> sim::Co<void> {
    co_await sim::Delay(eng, 2.0);
    EventQueue::post(t, Tid::make(0, 1), AdmEvent(AdmEventKind::kWithdraw, 0));
  });
  auto body = [&]() -> sim::Proc {
    co_await vm.spawn("slave", 1, "host1");
    co_await vm.spawn("gs", 1, "host2");
  };
  sim::spawn(eng, body());
  run_all();
  EXPECT_EQ(seen_mid_compute, 1u);
}

TEST_F(AdmEventsTest, MultipleSimultaneousEventsAllQueuedInOrder) {
  // The paper's third complication: several events can arrive concurrently
  // and none may be lost or re-ordered.
  std::vector<int> kinds;
  vm.register_program("slave", [&](Task& t) -> sim::Co<void> {
    EventQueue q(t);
    co_await sim::Delay(eng, 10.0);
    while (auto ev = q.take()) kinds.push_back(static_cast<int>(ev->kind));
    EXPECT_EQ(q.received(), 3u);
  });
  vm.register_program("gs", [&](Task& t) -> sim::Co<void> {
    const Tid dst = Tid::make(0, 1);
    EventQueue::post(t, dst, AdmEvent(AdmEventKind::kWithdraw, 0));
    EventQueue::post(t, dst, AdmEvent(AdmEventKind::kRebalance, -1));
    EventQueue::post(t, dst, AdmEvent(AdmEventKind::kRejoin, 0));
    co_return;
  });
  auto body = [&]() -> sim::Proc {
    co_await vm.spawn("slave", 1, "host1");
    co_await vm.spawn("gs", 1, "host2");
  };
  sim::spawn(eng, body());
  run_all();
  EXPECT_EQ(kinds, (std::vector<int>{0, 1, 2}));
}

TEST_F(AdmEventsTest, WaitTakeParksUntilEvent) {
  double got_at = -1;
  vm.register_program("master", [&](Task& t) -> sim::Co<void> {
    EventQueue q(t);
    AdmEvent ev = co_await q.wait_take();
    got_at = eng.now();
    EXPECT_EQ(ev.kind, AdmEventKind::kRebalance);
  });
  vm.register_program("gs", [&](Task& t) -> sim::Co<void> {
    co_await sim::Delay(eng, 7.0);
    EventQueue::post(t, Tid::make(0, 1),
                     AdmEvent(AdmEventKind::kRebalance, -1));
  });
  auto body = [&]() -> sim::Proc {
    co_await vm.spawn("master", 1, "host1");
    co_await vm.spawn("gs", 1, "host2");
  };
  sim::spawn(eng, body());
  run_all();
  EXPECT_GT(got_at, 7.0);
  EXPECT_LT(got_at, 8.0);  // + spawn offset + delivery
}

TEST_F(AdmEventsTest, TakeOnEmptyQueueReturnsNullopt) {
  vm.register_program("slave", [&](Task& t) -> sim::Co<void> {
    EventQueue q(t);
    EXPECT_FALSE(q.has_pending());
    EXPECT_EQ(q.take(), std::nullopt);
    co_return;
  });
  auto body = [&]() -> sim::Proc { co_await vm.spawn("slave", 1); };
  sim::spawn(eng, body());
  run_all();
}

}  // namespace
}  // namespace cpe::adm
