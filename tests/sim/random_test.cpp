#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cpe::sim {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(3.0, 5.5);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformMeanNearOneHalf) {
  Rng r(99);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRangeAndIsRoughlyUniform) {
  Rng r(42);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.below(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(11);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ChanceExtremes) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, SplitStreamsAreIndependentAndReproducible) {
  Rng a(77);
  Rng a2(77);
  Rng s1 = a.split();
  Rng s2 = a2.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(s1.next_u64(), s2.next_u64());
  // Parent stream continues deterministically after the split.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next_u64(), a2.next_u64());
}

}  // namespace
}  // namespace cpe::sim
