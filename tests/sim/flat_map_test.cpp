#include "util/flat_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <set>
#include <unordered_map>
#include <vector>

// FlatMap/FlatSet back the simulator's hottest lookups (tid -> task,
// tid -> sequence counters), so these tests stress exactly what the hot
// paths rely on: linear-probe chains across rehash, backward-shift deletion
// (no tombstone rot), move-only values, and agreement with std::unordered_map
// under a randomized op mix.

namespace {

using cpe::util::FlatMap;
using cpe::util::FlatSet;

TEST(FlatMap, InsertFindEraseBasics) {
  FlatMap<std::uint32_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.contains(7));
  EXPECT_EQ(m.find(7), m.end());

  auto [it, inserted] = m.emplace(7, 70);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->second, 70);
  EXPECT_FALSE(m.emplace(7, 99).second);  // duplicate insert is a no-op
  EXPECT_EQ(m.find(7)->second, 70);

  m[7] = 71;  // operator[] finds the existing slot
  EXPECT_EQ(m.find(7)->second, 71);
  m[8] = 80;  // and default-constructs a fresh one
  EXPECT_EQ(m.size(), 2u);

  m.insert_or_assign(7, 72);
  EXPECT_EQ(m.find(7)->second, 72);

  EXPECT_EQ(m.erase(7), 1u);
  EXPECT_EQ(m.erase(7), 0u);
  EXPECT_FALSE(m.contains(7));
  EXPECT_TRUE(m.contains(8));
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, SurvivesRehashWithSequentialKeys) {
  // tids are sequential in practice; Fibonacci hashing must spread them and
  // every element must survive the growth rehashes intact.
  FlatMap<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kN = 10'000;
  for (std::uint64_t k = 0; k < kN; ++k) m[k] = k * 3 + 1;
  ASSERT_EQ(m.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    auto it = m.find(k);
    ASSERT_NE(it, m.end()) << "lost key " << k;
    EXPECT_EQ(it->second, k * 3 + 1);
  }
}

TEST(FlatMap, BackwardShiftEraseKeepsChainsReachable) {
  // Build probe chains by inserting colliding-ish dense keys, then erase
  // every other one.  Backward-shift deletion must keep all survivors
  // findable (a tombstone-free table has no "deleted" sentinel to skip).
  FlatMap<std::uint32_t, std::uint32_t> m;
  constexpr std::uint32_t kN = 4'096;
  for (std::uint32_t k = 0; k < kN; ++k) m[k] = k;
  for (std::uint32_t k = 0; k < kN; k += 2) EXPECT_EQ(m.erase(k), 1u);
  EXPECT_EQ(m.size(), kN / 2);
  for (std::uint32_t k = 0; k < kN; ++k) {
    if (k % 2 == 0) {
      EXPECT_FALSE(m.contains(k)) << k;
    } else {
      auto it = m.find(k);
      ASSERT_NE(it, m.end()) << "erase broke the chain for " << k;
      EXPECT_EQ(it->second, k);
    }
  }
}

TEST(FlatMap, IterationVisitsEachLiveElementOnce) {
  FlatMap<std::uint32_t, std::uint32_t> m;
  for (std::uint32_t k = 0; k < 1'000; ++k) m[k] = k;
  for (std::uint32_t k = 0; k < 1'000; k += 3) m.erase(k);

  std::set<std::uint32_t> seen;
  for (const auto& [k, v] : m) {
    EXPECT_EQ(k, v);
    EXPECT_TRUE(seen.insert(k).second) << "visited " << k << " twice";
  }
  EXPECT_EQ(seen.size(), m.size());
  for (std::uint32_t k = 0; k < 1'000; ++k)
    EXPECT_EQ(seen.count(k), k % 3 == 0 ? 0u : 1u);
}

TEST(FlatMap, MoveOnlyValuesAreOwnedAndReleasedOnErase) {
  // Task registries store unique_ptr values; erase must release the owned
  // resource immediately (erase_at resets the slot), not at the next rehash.
  FlatMap<int, std::unique_ptr<int>> m;
  for (int k = 0; k < 100; ++k) m.emplace(k, std::make_unique<int>(k));
  ASSERT_EQ(m.size(), 100u);
  for (int k = 0; k < 100; k += 2) m.erase(k);
  for (int k = 1; k < 100; k += 2) {
    auto it = m.find(k);
    ASSERT_NE(it, m.end());
    ASSERT_NE(it->second, nullptr);
    EXPECT_EQ(*it->second, k);
  }
  m.clear();
  EXPECT_TRUE(m.empty());
}

TEST(FlatMap, EraseByIteratorAndClearReuse) {
  FlatMap<std::uint32_t, int> m;
  for (std::uint32_t k = 0; k < 64; ++k) m[k] = static_cast<int>(k);
  auto it = m.find(11);
  ASSERT_NE(it, m.end());
  m.erase(it);
  EXPECT_FALSE(m.contains(11));
  EXPECT_EQ(m.size(), 63u);

  m.clear();
  EXPECT_TRUE(m.empty());
  // The table stays usable (and correct) after clear.
  m[5] = 50;
  EXPECT_EQ(m.find(5)->second, 50);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, ReserveAvoidsRehashDuringFill) {
  FlatMap<std::uint32_t, std::uint32_t> m;
  m.reserve(1'000);
  for (std::uint32_t k = 0; k < 1'000; ++k) m[k] = k ^ 0xabcdu;
  for (std::uint32_t k = 0; k < 1'000; ++k) {
    auto it = m.find(k);
    ASSERT_NE(it, m.end());
    EXPECT_EQ(it->second, k ^ 0xabcdu);
  }
}

TEST(FlatMap, RandomizedAgreesWithUnorderedMap) {
  // The conversion from std::unordered_map was audited call-site by call
  // site; this is the behavioral proof — a random insert/assign/erase mix
  // over a small key universe (forcing collisions, chains, and reuse) must
  // leave both maps identical.
  std::mt19937 rng(20260809);
  std::uniform_int_distribution<std::uint32_t> key(0, 511);
  std::uniform_int_distribution<int> op(0, 99);

  FlatMap<std::uint32_t, std::uint64_t> flat;
  std::unordered_map<std::uint32_t, std::uint64_t> ref;
  for (int i = 0; i < 100'000; ++i) {
    const std::uint32_t k = key(rng);
    const int o = op(rng);
    if (o < 45) {
      const std::uint64_t v = rng();
      flat.insert_or_assign(k, v);
      ref[k] = v;
    } else if (o < 75) {
      EXPECT_EQ(flat.erase(k), ref.erase(k));
    } else {
      auto fit = flat.find(k);
      auto rit = ref.find(k);
      ASSERT_EQ(fit == flat.end(), rit == ref.end()) << "key " << k;
      if (rit != ref.end()) {
        EXPECT_EQ(fit->second, rit->second);
      }
    }
  }
  ASSERT_EQ(flat.size(), ref.size());
  for (const auto& [k, v] : ref) {
    auto it = flat.find(k);
    ASSERT_NE(it, flat.end()) << "key " << k;
    EXPECT_EQ(it->second, v);
  }
}

TEST(FlatSet, InsertEraseContainsIterate) {
  FlatSet<std::uint64_t> s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(3));
  EXPECT_FALSE(s.insert(3));  // already present
  EXPECT_TRUE(s.insert(9));
  EXPECT_TRUE(s.insert(27));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(9));
  EXPECT_EQ(s.count(4), 0u);

  std::vector<std::uint64_t> got;
  for (const std::uint64_t& k : s) got.push_back(k);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::uint64_t>{3, 9, 27}));

  EXPECT_EQ(s.erase(9), 1u);
  EXPECT_EQ(s.erase(9), 0u);
  EXPECT_FALSE(s.contains(9));
  s.clear();
  EXPECT_TRUE(s.empty());
}

}  // namespace
