#include "sim/wait.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cpe::sim {
namespace {

TEST(Trigger, FireWakesAllWaiters) {
  Engine eng;
  Trigger trig(eng);
  int woken = 0;
  auto waiter = [&]() -> Proc {
    co_await trig.wait();
    ++woken;
  };
  spawn(eng, waiter());
  spawn(eng, waiter());
  spawn(eng, waiter());
  auto firer = [&]() -> Proc {
    co_await Delay(eng, 2.0);
    trig.fire();
  };
  spawn(eng, firer());
  eng.run();
  EXPECT_EQ(woken, 3);
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
}

TEST(Trigger, FireWithNoWaitersIsNoop) {
  Engine eng;
  Trigger trig(eng);
  EXPECT_EQ(trig.fire(), 0u);
}

TEST(Trigger, WaiterArrivingAfterFireWaitsForNextFire) {
  Engine eng;
  Trigger trig(eng);
  bool woken = false;
  auto late = [&]() -> Proc {
    co_await Delay(eng, 5.0);  // arrives after the only fire at t=2
    co_await trig.wait();
    woken = true;
  };
  spawn(eng, late());
  auto firer = [&]() -> Proc {
    co_await Delay(eng, 2.0);
    trig.fire();
  };
  spawn(eng, firer());
  eng.run();
  EXPECT_FALSE(woken);  // no second fire ever happened
  EXPECT_EQ(trig.waiting(), 1u);
  trig.fire();
  eng.run();
  EXPECT_TRUE(woken);
}

TEST(Gate, OpenGatePassesImmediately) {
  Engine eng;
  Gate gate(eng, /*open=*/true);
  double passed_at = -1;
  auto body = [&]() -> Proc {
    co_await gate.wait();
    passed_at = eng.now();
  };
  spawn(eng, body());
  eng.run();
  EXPECT_DOUBLE_EQ(passed_at, 0.0);
}

TEST(Gate, ClosedGateBlocksUntilOpened) {
  Engine eng;
  Gate gate(eng, /*open=*/false);
  double passed_at = -1;
  auto body = [&]() -> Proc {
    co_await gate.wait();
    passed_at = eng.now();
  };
  spawn(eng, body());
  auto opener = [&]() -> Proc {
    co_await Delay(eng, 3.0);
    gate.open();
  };
  spawn(eng, opener());
  eng.run();
  EXPECT_DOUBLE_EQ(passed_at, 3.0);
}

TEST(Gate, ReCloseBeforeWaiterResumesKeepsItBlocked) {
  Engine eng;
  Gate gate(eng, /*open=*/false);
  bool passed = false;
  auto body = [&]() -> Proc {
    co_await gate.wait();
    passed = true;
  };
  spawn(eng, body());
  eng.run_until(1.0);
  gate.open();
  gate.close();  // closed again before the wake-up event runs
  eng.run();
  EXPECT_FALSE(passed);  // wait() loops on the predicate
  gate.open();
  eng.run();
  EXPECT_TRUE(passed);
}

TEST(Semaphore, MutualExclusionAndFifoOrder) {
  Engine eng;
  Semaphore sem(eng, 1);
  std::vector<int> order;
  auto worker = [&](int id) -> Proc {
    co_await sem.acquire();
    order.push_back(id);
    co_await Delay(eng, 1.0);
    sem.release();
  };
  for (int i = 0; i < 4; ++i) spawn(eng, worker(i));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(eng.now(), 4.0);
  EXPECT_EQ(sem.available(), 1u);
}

TEST(Semaphore, CountTwoAllowsTwoConcurrent) {
  Engine eng;
  Semaphore sem(eng, 2);
  int concurrent = 0;
  int peak = 0;
  auto worker = [&]() -> Proc {
    co_await sem.acquire();
    peak = std::max(peak, ++concurrent);
    co_await Delay(eng, 1.0);
    --concurrent;
    sem.release();
  };
  for (int i = 0; i < 6; ++i) spawn(eng, worker());
  eng.run();
  EXPECT_EQ(peak, 2);
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
}

TEST(Semaphore, NoBargingPastWaiters) {
  Engine eng;
  Semaphore sem(eng, 1);
  std::vector<int> order;
  auto holder = [&]() -> Proc {
    co_await sem.acquire();
    co_await Delay(eng, 5.0);
    sem.release();
  };
  auto early_waiter = [&]() -> Proc {
    co_await Delay(eng, 1.0);
    co_await sem.acquire();
    order.push_back(1);
    sem.release();
  };
  // Arrives at the exact moment the unit is released; must queue behind the
  // earlier waiter.
  auto late_contender = [&]() -> Proc {
    co_await Delay(eng, 5.0);
    co_await sem.acquire();
    order.push_back(2);
    sem.release();
  };
  spawn(eng, holder());
  spawn(eng, early_waiter());
  spawn(eng, late_contender());
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(WaitQueue, AbortedWaiterLeavesQueueCleanly) {
  Engine eng;
  Trigger trig(eng);
  bool other_woken = false;
  auto doomed = [&]() -> Proc {
    co_await trig.wait();
    ADD_FAILURE() << "aborted waiter must never resume";
  };
  auto survivor = [&]() -> Proc {
    co_await trig.wait();
    other_woken = true;
  };
  ProcHandle h = launch(eng, doomed());
  spawn(eng, survivor());
  eng.run_until(1.0);
  EXPECT_EQ(trig.waiting(), 2u);
  h.abort();
  EXPECT_EQ(trig.waiting(), 1u);
  trig.fire();
  eng.run();
  EXPECT_TRUE(other_woken);
}

TEST(WaitQueue, AbortBetweenWakeAndResumeIsSafe) {
  Engine eng;
  Trigger trig(eng);
  auto doomed = [&]() -> Proc {
    co_await trig.wait();
    ADD_FAILURE() << "must not resume";
  };
  ProcHandle h = launch(eng, doomed());
  eng.run_until(1.0);
  trig.fire();  // wake-up event now queued in the engine
  h.abort();    // destroys the frame; the wake-up must be cancelled
  eng.run();
  SUCCEED();
}

TEST(ScopeExit, RunsUnlessDismissed) {
  int runs = 0;
  {
    ScopeExit g([&] { ++runs; });
  }
  EXPECT_EQ(runs, 1);
  {
    ScopeExit g([&] { ++runs; });
    g.dismiss();
  }
  EXPECT_EQ(runs, 1);
}

}  // namespace
}  // namespace cpe::sim
