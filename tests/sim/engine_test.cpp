#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cpe::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0.0);
  EXPECT_EQ(eng.pending_count(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(2.0, [&] { order.push_back(2); });
  eng.schedule_at(1.0, [&] { order.push_back(1); });
  eng.schedule_at(3.0, [&] { order.push_back(3); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 3.0);
}

TEST(Engine, EqualTimestampsFireInScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    eng.schedule_at(5.0, [&, i] { order.push_back(i); });
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, ScheduleInIsRelativeToNow) {
  Engine eng;
  double fired_at = -1;
  eng.schedule_at(4.0, [&] {
    eng.schedule_in(2.5, [&] { fired_at = eng.now(); });
  });
  eng.run();
  EXPECT_DOUBLE_EQ(fired_at, 6.5);
}

TEST(Engine, NegativeDelayClampsToNow) {
  Engine eng;
  double fired_at = -1;
  eng.schedule_at(4.0, [&] {
    eng.schedule_in(-3.0, [&] { fired_at = eng.now(); });
  });
  eng.run();
  EXPECT_DOUBLE_EQ(fired_at, 4.0);
}

TEST(Engine, SchedulingInThePastClampsToNow) {
  Engine eng;
  double fired_at = -1;
  eng.schedule_at(4.0, [&] {
    eng.schedule_at(1.0, [&] { fired_at = eng.now(); });
  });
  eng.run();
  EXPECT_DOUBLE_EQ(fired_at, 4.0);
}

TEST(Engine, CancelPreventsExecution) {
  Engine eng;
  bool fired = false;
  EventId id = eng.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(eng.pending(id));
  eng.cancel(id);
  EXPECT_FALSE(eng.pending(id));
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelIsIdempotentAndSafeOnStaleIds) {
  Engine eng;
  EventId id = eng.schedule_at(1.0, [] {});
  eng.cancel(id);
  eng.cancel(id);           // double cancel
  eng.cancel(EventId{});    // invalid id
  eng.run();
  EventId id2 = eng.schedule_at(2.0, [] {});
  eng.run();
  eng.cancel(id2);          // already fired
  SUCCEED();
}

TEST(Engine, SlotReuseDoesNotConfuseStaleHandles) {
  Engine eng;
  bool second_fired = false;
  EventId first = eng.schedule_at(1.0, [] {});
  eng.cancel(first);
  // The freed slot is reused by the next event; the stale id must not be
  // able to cancel it.
  EventId second = eng.schedule_at(2.0, [&] { second_fired = true; });
  EXPECT_EQ(first.slot, second.slot);
  eng.cancel(first);
  eng.run();
  EXPECT_TRUE(second_fired);
}

TEST(Engine, PendingCountTracksLiveEvents) {
  Engine eng;
  EventId a = eng.schedule_at(1.0, [] {});
  eng.schedule_at(2.0, [] {});
  EXPECT_EQ(eng.pending_count(), 2u);
  eng.cancel(a);
  EXPECT_EQ(eng.pending_count(), 1u);
  eng.run();
  EXPECT_EQ(eng.pending_count(), 0u);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine eng;
  EXPECT_FALSE(eng.step());
  eng.schedule_at(1.0, [] {});
  EXPECT_TRUE(eng.step());
  EXPECT_FALSE(eng.step());
}

TEST(Engine, RunUntilStopsAtBoundaryInclusive) {
  Engine eng;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0})
    eng.schedule_at(t, [&, t] { fired.push_back(t); });
  eng.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
  eng.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Engine, RunUntilAdvancesTimeEvenWithoutEvents) {
  Engine eng;
  eng.run_until(42.0);
  EXPECT_DOUBLE_EQ(eng.now(), 42.0);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine eng;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) eng.schedule_in(1.0, chain);
  };
  eng.schedule_at(0.0, chain);
  eng.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(eng.now(), 99.0);
}

TEST(Engine, RunThrowsOnEventBudgetExhaustion) {
  Engine eng;
  std::function<void()> forever = [&] { eng.schedule_in(1.0, forever); };
  eng.schedule_at(0.0, forever);
  EXPECT_THROW(eng.run(1000), Error);
}

TEST(Engine, ReportedFailureRethrownFromRun) {
  Engine eng;
  eng.schedule_at(1.0, [&] {
    eng.report_failure(std::make_exception_ptr(Error("boom")));
  });
  EXPECT_THROW(eng.run(), Error);
}

TEST(Engine, CallbackCancellingLaterEventWorks) {
  Engine eng;
  bool late_fired = false;
  EventId late = eng.schedule_at(5.0, [&] { late_fired = true; });
  eng.schedule_at(1.0, [&] { eng.cancel(late); });
  eng.run();
  EXPECT_FALSE(late_fired);
}

TEST(Engine, ManyEventsStressOrdering) {
  Engine eng;
  std::vector<std::pair<double, int>> fired;
  // Schedule out of order with duplicate timestamps.
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 7919) % 100);
    eng.schedule_at(t, [&, t, i] { fired.emplace_back(t, i); });
  }
  eng.run();
  ASSERT_EQ(fired.size(), 1000u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].first, fired[i].first);
    if (fired[i - 1].first == fired[i].first) {
      EXPECT_LT(fired[i - 1].second, fired[i].second);  // FIFO at same t
    }
  }
}

}  // namespace
}  // namespace cpe::sim
