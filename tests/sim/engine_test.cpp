#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <new>
#include <random>
#include <string>
#include <tuple>
#include <vector>

// -- Global allocation counter ------------------------------------------------
// Replaces the global allocator for the whole test binary so individual tests
// can assert that a code path performs no heap allocation (Engine::cancel is
// noexcept and must never allocate).  Counting only; semantics unchanged.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};

void* counted_alloc(std::size_t n) {
  ++g_heap_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
// The nothrow forms must be replaced too: std::stable_sort's temporary
// buffer allocates via new(nothrow) but frees via plain delete, and mixing
// the runtime's nothrow-new with our free() trips ASan's matcher.
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_heap_allocs;
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++g_heap_allocs;
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace cpe::sim {

/// Test-only backdoor used by the generation-wraparound cases.
struct EngineTestPeer {
  static void set_generation(Engine& eng, std::uint32_t slot,
                             std::uint32_t gen) {
    eng.slots_[slot].gen = gen;
  }
  static std::uint32_t generation(const Engine& eng, std::uint32_t slot) {
    return eng.slots_[slot].gen;
  }
};

namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0.0);
  EXPECT_EQ(eng.pending_count(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(2.0, [&] { order.push_back(2); });
  eng.schedule_at(1.0, [&] { order.push_back(1); });
  eng.schedule_at(3.0, [&] { order.push_back(3); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 3.0);
}

TEST(Engine, EqualTimestampsFireInScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    eng.schedule_at(5.0, [&, i] { order.push_back(i); });
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, ScheduleInIsRelativeToNow) {
  Engine eng;
  double fired_at = -1;
  eng.schedule_at(4.0, [&] {
    eng.schedule_in(2.5, [&] { fired_at = eng.now(); });
  });
  eng.run();
  EXPECT_DOUBLE_EQ(fired_at, 6.5);
}

TEST(Engine, NegativeDelayClampsToNow) {
  Engine eng;
  double fired_at = -1;
  eng.schedule_at(4.0, [&] {
    eng.schedule_in(-3.0, [&] { fired_at = eng.now(); });
  });
  eng.run();
  EXPECT_DOUBLE_EQ(fired_at, 4.0);
}

TEST(Engine, SchedulingInThePastClampsToNow) {
  Engine eng;
  double fired_at = -1;
  eng.schedule_at(4.0, [&] {
    eng.schedule_at(1.0, [&] { fired_at = eng.now(); });
  });
  eng.run();
  EXPECT_DOUBLE_EQ(fired_at, 4.0);
}

TEST(Engine, CancelPreventsExecution) {
  Engine eng;
  bool fired = false;
  EventId id = eng.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(eng.pending(id));
  eng.cancel(id);
  EXPECT_FALSE(eng.pending(id));
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelIsIdempotentAndSafeOnStaleIds) {
  Engine eng;
  EventId id = eng.schedule_at(1.0, [] {});
  eng.cancel(id);
  eng.cancel(id);           // double cancel
  eng.cancel(EventId{});    // invalid id
  eng.run();
  EventId id2 = eng.schedule_at(2.0, [] {});
  eng.run();
  eng.cancel(id2);          // already fired
  SUCCEED();
}

TEST(Engine, SlotReuseDoesNotConfuseStaleHandles) {
  Engine eng;
  bool second_fired = false;
  EventId first = eng.schedule_at(1.0, [] {});
  eng.cancel(first);
  // The freed slot is reused by the next event; the stale id must not be
  // able to cancel it.
  EventId second = eng.schedule_at(2.0, [&] { second_fired = true; });
  EXPECT_EQ(first.slot, second.slot);
  eng.cancel(first);
  eng.run();
  EXPECT_TRUE(second_fired);
}

TEST(Engine, PendingCountTracksLiveEvents) {
  Engine eng;
  EventId a = eng.schedule_at(1.0, [] {});
  eng.schedule_at(2.0, [] {});
  EXPECT_EQ(eng.pending_count(), 2u);
  eng.cancel(a);
  EXPECT_EQ(eng.pending_count(), 1u);
  eng.run();
  EXPECT_EQ(eng.pending_count(), 0u);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine eng;
  EXPECT_FALSE(eng.step());
  eng.schedule_at(1.0, [] {});
  EXPECT_TRUE(eng.step());
  EXPECT_FALSE(eng.step());
}

TEST(Engine, RunUntilStopsAtBoundaryInclusive) {
  Engine eng;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0})
    eng.schedule_at(t, [&, t] { fired.push_back(t); });
  eng.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
  eng.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Engine, RunUntilAdvancesTimeEvenWithoutEvents) {
  Engine eng;
  eng.run_until(42.0);
  EXPECT_DOUBLE_EQ(eng.now(), 42.0);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine eng;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) eng.schedule_in(1.0, chain);
  };
  eng.schedule_at(0.0, chain);
  eng.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(eng.now(), 99.0);
}

TEST(Engine, RunThrowsOnEventBudgetExhaustion) {
  Engine eng;
  std::function<void()> forever = [&] { eng.schedule_in(1.0, forever); };
  eng.schedule_at(0.0, forever);
  EXPECT_THROW(eng.run(1000), Error);
}

TEST(Engine, ReportedFailureRethrownFromRun) {
  Engine eng;
  eng.schedule_at(1.0, [&] {
    eng.report_failure(std::make_exception_ptr(Error("boom")));
  });
  EXPECT_THROW(eng.run(), Error);
}

TEST(Engine, CallbackCancellingLaterEventWorks) {
  Engine eng;
  bool late_fired = false;
  EventId late = eng.schedule_at(5.0, [&] { late_fired = true; });
  eng.schedule_at(1.0, [&] { eng.cancel(late); });
  eng.run();
  EXPECT_FALSE(late_fired);
}

TEST(Engine, ManyEventsStressOrdering) {
  Engine eng;
  std::vector<std::pair<double, int>> fired;
  // Schedule out of order with duplicate timestamps.
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 7919) % 100);
    eng.schedule_at(t, [&, t, i] { fired.emplace_back(t, i); });
  }
  eng.run();
  ASSERT_EQ(fired.size(), 1000u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].first, fired[i].first);
    if (fired[i - 1].first == fired[i].first) {
      EXPECT_LT(fired[i - 1].second, fired[i].second);  // FIFO at same t
    }
  }
}

TEST(Engine, CancelNeverAllocates) {
  Engine eng;
  // Warm the arena: slots, free list, and bucket vectors all reach steady
  // capacity, then every later schedule/cancel recycles pooled storage.
  std::vector<EventId> ids;
  for (int round = 0; round < 3; ++round) {
    ids.clear();
    for (int i = 0; i < 512; ++i)
      ids.push_back(eng.schedule_in(1.0 + i * 0.01, [&eng] { (void)eng; }));
    for (EventId id : ids) eng.cancel(id);
  }
  ids.clear();
  for (int i = 0; i < 512; ++i)
    ids.push_back(eng.schedule_in(1.0 + i * 0.01, [&eng] { (void)eng; }));
  const std::uint64_t before = g_heap_allocs.load();
  for (EventId id : ids) eng.cancel(id);  // includes compaction sweeps
  EXPECT_EQ(g_heap_allocs.load(), before)
      << "noexcept Engine::cancel must not allocate";
  EXPECT_EQ(eng.pending_count(), 0u);
}

TEST(Engine, SmallCaptureSchedulingIsAllocationFreeInSteadyState) {
  Engine eng;
  int fired = 0;
  // Warm-up: enough schedule/fire cycles to size every calendar bucket.
  for (int i = 0; i < 64; ++i) {
    eng.schedule_in(1.0, [&fired] { ++fired; });
    eng.run();
  }
  const std::uint64_t before = g_heap_allocs.load();
  for (int i = 0; i < 1000; ++i) {
    eng.schedule_in(1.0, [&fired] { ++fired; });
    eng.run();
  }
  EXPECT_EQ(g_heap_allocs.load(), before)
      << "pooled small-callable slots must recycle without heap traffic";
  EXPECT_EQ(fired, 1064);
}

TEST(Engine, LargeCapturesFallBackToHeapAndStillFire) {
  Engine eng;
  std::array<char, 100> big{};  // exceeds EventFn::kInlineBytes
  big[0] = 7;
  big[99] = 9;
  int out = 0;
  eng.schedule_at(1.0, [big, &out] { out = big[0] + big[99]; });
  eng.run();
  EXPECT_EQ(out, 16);
}

TEST(Engine, ManyReportedFailuresRethrowInOrder) {
  Engine eng;
  constexpr int kFailures = 200;
  for (int i = 0; i < kFailures; ++i)
    eng.report_failure(
        std::make_exception_ptr(Error("failure-" + std::to_string(i))));
  for (int i = 0; i < kFailures; ++i) {
    try {
      eng.step();
      FAIL() << "expected failure " << i << " to rethrow";
    } catch (const Error& e) {
      EXPECT_EQ(std::string(e.what()), "failure-" + std::to_string(i));
    }
  }
  EXPECT_FALSE(eng.step());  // drained: back to normal operation
}

TEST(Engine, GenerationWraparoundDoesNotResurrectOldHandles) {
  Engine eng;
  bool old_fired = false;
  EventId seed = eng.schedule_at(1.0, [&old_fired] { old_fired = true; });
  eng.cancel(seed);
  // Force the slot to the maximum generation, then reuse it: the fire path
  // increments the generation, wrapping it to 0.
  EngineTestPeer::set_generation(eng, seed.slot, 0xffffffffu);
  bool wrapped_fired = false;
  EventId wrapped =
      eng.schedule_at(1.0, [&wrapped_fired] { wrapped_fired = true; });
  ASSERT_EQ(wrapped.slot, seed.slot);
  EXPECT_EQ(wrapped.gen, 0xffffffffu);
  eng.run();
  EXPECT_TRUE(wrapped_fired);
  EXPECT_EQ(EngineTestPeer::generation(eng, seed.slot), 0u);  // wrapped
  // A post-wrap event in the same slot must be immune to the pre-wrap
  // handle: gen 0xffffffff vs live gen 0.
  bool post_fired = false;
  EventId post = eng.schedule_at(2.0, [&post_fired] { post_fired = true; });
  ASSERT_EQ(post.slot, seed.slot);
  EXPECT_EQ(post.gen, 0u);
  eng.cancel(wrapped);
  EXPECT_FALSE(eng.pending(wrapped));
  EXPECT_TRUE(eng.pending(post));
  eng.run();
  EXPECT_TRUE(post_fired);
  EXPECT_FALSE(old_fired);
}

TEST(Engine, SlotReuseAbaAcrossMultipleCycles) {
  Engine eng;
  int fired_a = 0, fired_b = 0, fired_c = 0;
  // Cycle 1: schedule + cancel.
  EventId a = eng.schedule_at(1.0, [&fired_a] { ++fired_a; });
  eng.cancel(a);
  // Cycle 2: same slot, schedule + cancel.
  EventId b = eng.schedule_at(1.0, [&fired_b] { ++fired_b; });
  ASSERT_EQ(b.slot, a.slot);
  eng.cancel(b);
  // Cycle 3: same slot, stays live.
  EventId c = eng.schedule_at(1.0, [&fired_c] { ++fired_c; });
  ASSERT_EQ(c.slot, a.slot);
  // Stale handles from both prior cycles must not touch the live event.
  eng.cancel(a);
  eng.cancel(b);
  EXPECT_TRUE(eng.pending(c));
  EXPECT_FALSE(eng.pending(a));
  EXPECT_FALSE(eng.pending(b));
  eng.run();
  EXPECT_EQ(fired_a, 0);
  EXPECT_EQ(fired_b, 0);
  EXPECT_EQ(fired_c, 1);
  // And a fired-then-reused slot: the fired handle must be stale too.
  EventId d = eng.schedule_at(3.0, [] {});
  ASSERT_EQ(d.slot, a.slot);
  eng.cancel(c);  // stale: c already fired
  EXPECT_TRUE(eng.pending(d));
  eng.cancel(d);
}

TEST(Engine, MassCancelCompactionPreservesSurvivors) {
  Engine eng;
  std::vector<EventId> ids;
  std::vector<int> fired;
  for (int i = 0; i < 1000; ++i)
    ids.push_back(eng.schedule_at(static_cast<double>(i % 97),
                                  [&fired, i] { fired.push_back(i); }));
  // Cancel 90%: stale entries outnumber live ones, forcing compaction.
  for (int i = 0; i < 1000; ++i)
    if (i % 10 != 3) eng.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(eng.pending_count(), 100u);
  eng.run();
  ASSERT_EQ(fired.size(), 100u);
  for (int i : fired) EXPECT_EQ(i % 10, 3);
  // Survivors still fire in (t, schedule order): re-derive the expected
  // order and compare exactly.
  std::vector<int> expect;
  for (int i = 0; i < 1000; ++i)
    if (i % 10 == 3) expect.push_back(i);
  std::stable_sort(expect.begin(), expect.end(),
                   [](int x, int y) { return x % 97 < y % 97; });
  EXPECT_EQ(fired, expect);
}

TEST(Engine, SparseFarApartTimesSkipEmptyYears) {
  Engine eng;
  std::vector<double> fired;
  for (double t : {1e9, 1e6, 1e3, 5.0, 1e-3})
    eng.schedule_at(t, [&fired, t] { fired.push_back(t); });
  eng.run();
  EXPECT_EQ(fired, (std::vector<double>{1e-3, 5.0, 1e3, 1e6, 1e9}));
  EXPECT_DOUBLE_EQ(eng.now(), 1e9);
}

TEST(Engine, SameTimestampBurstFiresFifo) {
  Engine eng;
  std::vector<int> order;
  constexpr int kBurst = 5000;
  for (int i = 0; i < kBurst; ++i)
    eng.schedule_at(10.0, [&order, i] { order.push_back(i); });
  eng.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kBurst));
  for (int i = 0; i < kBurst; ++i)
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, CalendarMatchesReferenceModelUnderChurn) {
  // Golden-model fuzz: random schedule/cancel/run_until churn, checked
  // against a from-scratch (t, schedule seq) sort of the survivors.
  Engine eng;
  std::mt19937_64 rng(0xC0FFEEu);
  struct Rec {
    double t;
    int serial;
    EventId id;
    bool cancelled = false;
  };
  std::vector<Rec> recs;
  std::vector<std::pair<double, int>> fired;
  int serial = 0;
  for (int round = 0; round < 40; ++round) {
    const int batch = static_cast<int>(rng() % 120);
    for (int i = 0; i < batch; ++i) {
      // Quantized offsets make duplicate timestamps common (FIFO stress).
      const double t =
          eng.now() + static_cast<double>(rng() % 256) / 4.0;
      const int s = serial++;
      recs.push_back(
          {t, s, eng.schedule_at(t, [&fired, t, s] {
             fired.emplace_back(t, s);
           })});
    }
    for (Rec& r : recs) {
      if (!r.cancelled && rng() % 3 == 0 && eng.pending(r.id)) {
        eng.cancel(r.id);
        r.cancelled = true;
      }
    }
    eng.run_until(eng.now() + static_cast<double>(rng() % 40));
  }
  eng.run();
  std::vector<std::pair<double, int>> expect;
  for (const Rec& r : recs)
    if (!r.cancelled) expect.emplace_back(r.t, r.serial);
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(fired, expect);
}

TEST(Engine, OverflowEntriesFireInOrderAsWindowAdvances) {
  // Bimodal offsets: mostly near-future events keep the calendar width
  // tight, while occasional far-future pushes land past the wheel mapping
  // and park in the overflow heap.  As the window advances those parked
  // entries must be adopted *before* any later-timestamped bucket entry —
  // the golden-model comparison catches any out-of-order pop.
  Engine eng;
  std::mt19937_64 rng(0xBADCAB1Eu);
  std::vector<std::pair<double, int>> fired;
  std::vector<std::pair<double, int>> expect;
  int serial = 0;
  for (int round = 0; round < 60; ++round) {
    const int batch = 20 + static_cast<int>(rng() % 60);
    for (int i = 0; i < batch; ++i) {
      const bool far = rng() % 16 == 0;
      const double off = far
          ? 1e4 + static_cast<double>(rng() % 100'000)
          : static_cast<double>(rng() % 128) / 8.0;
      const double t = eng.now() + off;
      const int s = serial++;
      eng.schedule_at(t, [&fired, t, s] { fired.emplace_back(t, s); });
      expect.emplace_back(t, s);
    }
    eng.run_until(eng.now() + static_cast<double>(rng() % 32));
  }
  eng.run();
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(fired, expect);
}

}  // namespace
}  // namespace cpe::sim
