#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/coro.hpp"
#include "sim/engine.hpp"
#include "sim/wait.hpp"

namespace cpe::sim {
namespace {

TEST(TraceLog, RecordsAreTimestamped) {
  Engine eng;
  TraceLog log(eng);
  auto body = [&]() -> Proc {
    log.log("a", "start");
    co_await Delay(eng, 2.0);
    log.log("a", "end");
  };
  spawn(eng, body());
  eng.run();
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_DOUBLE_EQ(log.records()[0].t, 0.0);
  EXPECT_DOUBLE_EQ(log.records()[1].t, 2.0);
}

TEST(TraceLog, ByCategoryFilters) {
  Engine eng;
  TraceLog log(eng);
  log.log("x", "1");
  log.log("y", "2");
  log.log("x", "3");
  EXPECT_EQ(log.by_category("x").size(), 2u);
  EXPECT_EQ(log.by_category("y").size(), 1u);
  EXPECT_EQ(log.by_category("z").size(), 0u);
  EXPECT_EQ(log.count("x"), 2u);
}

TEST(TraceLog, FindLocatesSubstring) {
  Engine eng;
  TraceLog log(eng);
  log.log("mig", "stage=flush task=7");
  log.log("mig", "stage=transfer task=7");
  const TraceRecord* r = log.find("mig", "transfer");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->text, "stage=transfer task=7");
  EXPECT_EQ(log.find("mig", "absent"), nullptr);
  EXPECT_EQ(log.find("other", "flush"), nullptr);
}

TEST(TraceLog, EchoWritesToStream) {
  Engine eng;
  TraceLog log(eng);
  std::ostringstream os;
  log.echo_to(&os);
  log.log("cat", "hello");
  EXPECT_NE(os.str().find("[cat] hello"), std::string::npos);
}

TEST(TraceLog, EchoFilterSuppressesButStillRecords) {
  Engine eng;
  TraceLog log(eng);
  std::ostringstream os;
  log.echo_to(&os);
  log.echo_filter([](const TraceRecord& r) { return r.category == "keep"; });
  log.log("drop", "a");
  log.log("keep", "b");
  EXPECT_EQ(os.str().find("drop"), std::string::npos);
  EXPECT_NE(os.str().find("keep"), std::string::npos);
  EXPECT_EQ(log.records().size(), 2u);
}

TEST(TraceLog, FormatRendersLines) {
  Engine eng;
  TraceLog log(eng);
  log.log("a", "one");
  log.log("b", "two");
  const std::string all = log.format();
  EXPECT_NE(all.find("[a] one"), std::string::npos);
  EXPECT_NE(all.find("[b] two"), std::string::npos);
  const std::string only_a = log.format("a");
  EXPECT_NE(only_a.find("one"), std::string::npos);
  EXPECT_EQ(only_a.find("two"), std::string::npos);
}

TEST(TraceLog, RingCapsMemoryAndCountsDrops) {
  Engine eng;
  TraceLog log(eng);
  EXPECT_EQ(log.capacity(), TraceLog::kDefaultCapacity);
  log.set_capacity(TraceLog::kMinCapacity);
  const int total = static_cast<int>(TraceLog::kMinCapacity) + 7;
  for (int i = 0; i < total; ++i) log.log("r", "rec" + std::to_string(i));
  EXPECT_EQ(log.records().size(), TraceLog::kMinCapacity);
  EXPECT_EQ(log.dropped(), 7u);
  // The survivors are the newest records, in order.
  EXPECT_EQ(log.records().front().text, "rec7");
  EXPECT_EQ(log.records().back().text, "rec" + std::to_string(total - 1));
  // find/count only see what the ring still holds.
  EXPECT_EQ(log.find("r", "rec0"), nullptr);
  EXPECT_EQ(log.count("r"), TraceLog::kMinCapacity);
}

TEST(TraceLog, ShrinkingCapacityTrimsOldestImmediately) {
  Engine eng;
  TraceLog log(eng);
  const int total = static_cast<int>(TraceLog::kMinCapacity) + 3;
  for (int i = 0; i < total; ++i) log.log("r", std::to_string(i));
  log.set_capacity(TraceLog::kMinCapacity);
  EXPECT_EQ(log.records().size(), TraceLog::kMinCapacity);
  EXPECT_EQ(log.dropped(), 3u);
  EXPECT_EQ(log.records()[0].text, "3");
  log.clear();
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_TRUE(log.records().empty());
}

TEST(TraceLog, TinyCapacityRequestsClampToFloor) {
  Engine eng;
  TraceLog log(eng);
  // set_capacity(0) used to be an assertion failure; now it clamps to the
  // documented floor and the log keeps working.
  log.set_capacity(0);
  EXPECT_EQ(log.capacity(), TraceLog::kMinCapacity);
  log.set_capacity(1);
  EXPECT_EQ(log.capacity(), TraceLog::kMinCapacity);
  for (std::size_t i = 0; i < 2 * TraceLog::kMinCapacity; ++i)
    log.log("r", std::to_string(i));
  EXPECT_EQ(log.records().size(), TraceLog::kMinCapacity);
  EXPECT_EQ(log.dropped(), TraceLog::kMinCapacity);
  // Above the floor the request is honoured exactly.
  log.set_capacity(TraceLog::kMinCapacity + 5);
  EXPECT_EQ(log.capacity(), TraceLog::kMinCapacity + 5);
}

TEST(TraceLog, DeterministicReplayProducesIdenticalTraces) {
  auto run_once = [] {
    Engine eng;
    TraceLog log(eng);
    auto worker = [&](int id) -> Proc {
      for (int i = 0; i < 3; ++i) {
        co_await Delay(eng, 0.5 * (id + 1));
        log.log("w", "id=" + std::to_string(id) + " i=" + std::to_string(i));
      }
    };
    spawn(eng, worker(0));
    spawn(eng, worker(1));
    eng.run();
    return log.records();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace cpe::sim
