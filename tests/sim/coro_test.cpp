#include "sim/coro.hpp"

#include <gtest/gtest.h>

#include "sim/wait.hpp"

namespace cpe::sim {
namespace {

TEST(Coro, SpawnedProcessRunsAtCurrentTime) {
  Engine eng;
  bool ran = false;
  auto body = [&]() -> Proc {
    ran = true;
    co_return;
  };
  spawn(eng, body());
  EXPECT_FALSE(ran);  // lazily started
  eng.run();
  EXPECT_TRUE(ran);
}

TEST(Coro, DelayAdvancesVirtualTime) {
  Engine eng;
  double finished_at = -1;
  auto body = [&]() -> Proc {
    co_await Delay(eng, 1.5);
    co_await Delay(eng, 2.5);
    finished_at = eng.now();
  };
  spawn(eng, body());
  eng.run();
  EXPECT_DOUBLE_EQ(finished_at, 4.0);
}

TEST(Coro, AwaitedChildRunsInline) {
  Engine eng;
  std::vector<int> order;
  auto child = [&]() -> Co<int> {
    order.push_back(1);
    co_await Delay(eng, 1.0);
    order.push_back(2);
    co_return 42;
  };
  auto parent = [&]() -> Proc {
    order.push_back(0);
    const int v = co_await child();
    order.push_back(3);
    EXPECT_EQ(v, 42);
    EXPECT_DOUBLE_EQ(eng.now(), 1.0);
  };
  spawn(eng, parent());
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Coro, NestedChildrenChainCorrectly) {
  Engine eng;
  auto leaf = [&](int n) -> Co<int> {
    co_await Delay(eng, 1.0);
    co_return n * 2;
  };
  auto mid = [&](int n) -> Co<int> {
    const int a = co_await leaf(n);
    const int b = co_await leaf(n + 1);
    co_return a + b;
  };
  int result = 0;
  auto top = [&]() -> Proc { result = co_await mid(10); };
  spawn(eng, top());
  eng.run();
  EXPECT_EQ(result, 42);
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
}

TEST(Coro, ExceptionPropagatesThroughAwait) {
  Engine eng;
  auto child = [&]() -> Co<void> {
    co_await Delay(eng, 1.0);
    throw Error("child failed");
  };
  bool caught = false;
  auto parent = [&]() -> Proc {
    try {
      co_await child();
    } catch (const Error&) {
      caught = true;
    }
  };
  spawn(eng, parent());
  eng.run();
  EXPECT_TRUE(caught);
}

TEST(Coro, ExceptionFromDetachedProcessSurfacesInRun) {
  Engine eng;
  auto body = [&]() -> Proc {
    co_await Delay(eng, 1.0);
    throw Error("detached failure");
  };
  spawn(eng, body());
  EXPECT_THROW(eng.run(), Error);
}

TEST(Coro, ValueTypesMoveThroughCo) {
  Engine eng;
  auto make = [&]() -> Co<std::unique_ptr<int>> {
    co_await Delay(eng, 0.5);
    co_return std::make_unique<int>(7);
  };
  std::unique_ptr<int> got;
  auto top = [&]() -> Proc { got = co_await make(); };
  spawn(eng, top());
  eng.run();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, 7);
}

TEST(Coro, LaunchReturnsHandleThatReportsCompletion) {
  Engine eng;
  auto body = [&]() -> Proc { co_await Delay(eng, 3.0); };
  ProcHandle h = launch(eng, body());
  EXPECT_TRUE(h.running());
  eng.run();
  EXPECT_FALSE(h.running());
}

TEST(Coro, AbortBeforeStartIsSafe) {
  Engine eng;
  bool ran = false;
  auto body = [&]() -> Proc {
    ran = true;
    co_return;
  };
  {
    ProcHandle h = launch(eng, body());
    h.abort();
    EXPECT_FALSE(h.running());
  }
  eng.run();
  EXPECT_FALSE(ran);
}

TEST(Coro, AbortWhileSuspendedInDelayCancelsWakeup) {
  Engine eng;
  bool resumed = false;
  auto body = [&]() -> Proc {
    co_await Delay(eng, 10.0);
    resumed = true;
  };
  ProcHandle h = launch(eng, body());
  eng.run_until(5.0);
  EXPECT_TRUE(h.running());
  h.abort();
  eng.run();  // must not resume a destroyed frame
  EXPECT_FALSE(resumed);
  EXPECT_EQ(eng.pending_count(), 0u);
}

TEST(Coro, AbortUnwindsNestedChildren) {
  Engine eng;
  int destroyed = 0;
  struct Probe {
    int* d;
    ~Probe() { ++*d; }
  };
  auto leaf = [&]() -> Co<void> {
    Probe p{&destroyed};
    co_await Delay(eng, 100.0);
  };
  auto mid = [&]() -> Co<void> {
    Probe p{&destroyed};
    co_await leaf();
  };
  auto top = [&]() -> Proc {
    Probe p{&destroyed};
    co_await mid();
  };
  ProcHandle h = launch(eng, top());
  eng.run_until(1.0);
  h.abort();
  EXPECT_EQ(destroyed, 3);  // all three frames unwound
  eng.run();
}

TEST(Coro, HandleDestructionAbortsProcess) {
  Engine eng;
  bool resumed = false;
  {
    auto body = [&]() -> Proc {
      co_await Delay(eng, 10.0);
      resumed = true;
    };
    ProcHandle h = launch(eng, body());
    eng.run_until(1.0);
  }  // h destroyed here
  eng.run();
  EXPECT_FALSE(resumed);
}

TEST(Coro, DetachLetsProcessFinish) {
  Engine eng;
  bool resumed = false;
  // `body` stays alive past eng.run(): the detached coroutine references
  // its closure (the coroutine lifetime rule, README).
  auto body = [&]() -> Proc {
    co_await Delay(eng, 10.0);
    resumed = true;
  };
  {
    ProcHandle h = launch(eng, body());
    h.detach();
  }
  eng.run();
  EXPECT_TRUE(resumed);
}

TEST(Coro, MovedProcHandleStaysLinked) {
  Engine eng;
  auto body = [&]() -> Proc { co_await Delay(eng, 5.0); };
  ProcHandle a = launch(eng, body());
  ProcHandle b = std::move(a);
  EXPECT_FALSE(a.running());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.running());
  eng.run();
  EXPECT_FALSE(b.running());
}

TEST(Coro, ManyConcurrentProcessesInterleaveDeterministically) {
  Engine eng;
  std::vector<int> order;
  auto worker = [&](int id, double period) -> Proc {
    for (int i = 0; i < 3; ++i) {
      co_await Delay(eng, period);
      order.push_back(id);
    }
  };
  spawn(eng, worker(1, 1.0));
  spawn(eng, worker(2, 1.5));
  eng.run();
  // t=1:w1, t=1.5:w2, t=2:w1, t=3: both due — w2's wake-up was scheduled at
  // t=1.5, before w1's at t=2, so FIFO tie-breaking runs w2 first.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

}  // namespace
}  // namespace cpe::sim

namespace cpe::sim {
namespace {

// Regression guard for a GCC 12 coroutine miscompilation: a prvalue
// *aggregate*-initialized argument bound to a by-value coroutine parameter is
// not properly copied into the frame — the copy aliases the caller's
// temporary, and non-trivial members are destroyed twice (double-free).
// Types with a user-provided constructor are unaffected, so every struct this
// library passes by value into coroutines declares one.  This test exercises
// the safe pattern end-to-end; if it crashes or ASan flags it, the workaround
// regressed.
TEST(Coro, GccAggregateParamRegression) {
  struct NonAggregate {
    int x;
    std::string s;
    NonAggregate(int x_, std::string s_) : x(x_), s(std::move(s_)) {}
  };
  Engine eng;
  std::string got;
  auto child = [&](NonAggregate p) -> Co<void> {
    co_await Delay(eng, 0.5);
    got = p.s + "/" + std::to_string(p.x);
  };
  auto parent = [&]() -> Proc {
    co_await child(NonAggregate{7, std::string("heap-allocated payload ....")});
  };
  spawn(eng, parent());
  eng.run();
  EXPECT_EQ(got, "heap-allocated payload ..../7");
}

}  // namespace
}  // namespace cpe::sim
