#include "sim/channel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cpe::sim {
namespace {

TEST(Channel, SendThenRecvReturnsImmediately) {
  Engine eng;
  Channel<int> ch(eng);
  int got = 0;
  auto body = [&]() -> Proc {
    ch.send(41);
    got = co_await ch.recv();
  };
  spawn(eng, body());
  eng.run();
  EXPECT_EQ(got, 41);
}

TEST(Channel, RecvBlocksUntilSend) {
  Engine eng;
  Channel<std::string> ch(eng);
  double received_at = -1;
  auto receiver = [&]() -> Proc {
    const std::string s = co_await ch.recv();
    EXPECT_EQ(s, "hello");
    received_at = eng.now();
  };
  auto sender = [&]() -> Proc {
    co_await Delay(eng, 2.0);
    ch.send("hello");
  };
  spawn(eng, receiver());
  spawn(eng, sender());
  eng.run();
  EXPECT_DOUBLE_EQ(received_at, 2.0);
}

TEST(Channel, FifoOrderPreserved) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<int> got;
  auto receiver = [&]() -> Proc {
    for (int i = 0; i < 5; ++i) got.push_back(co_await ch.recv());
  };
  auto sender = [&]() -> Proc {
    for (int i = 0; i < 5; ++i) {
      ch.send(i);
      co_await Delay(eng, 0.1);
    }
  };
  spawn(eng, receiver());
  spawn(eng, sender());
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, BurstSendWakesAllReceivers) {
  Engine eng;
  Channel<int> ch(eng);
  int received = 0;
  auto receiver = [&]() -> Proc {
    co_await ch.recv();
    ++received;
  };
  for (int i = 0; i < 3; ++i) spawn(eng, receiver());
  auto sender = [&]() -> Proc {
    co_await Delay(eng, 1.0);
    // Burst: three sends in the same instant.
    ch.send(1);
    ch.send(2);
    ch.send(3);
    co_return;
  };
  spawn(eng, sender());
  eng.run();
  EXPECT_EQ(received, 3);
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, TryRecvNonBlocking) {
  Engine eng;
  Channel<int> ch(eng);
  EXPECT_EQ(ch.try_recv(), std::nullopt);
  ch.send(9);
  EXPECT_EQ(ch.size(), 1u);
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, MoveOnlyPayloads) {
  Engine eng;
  Channel<std::unique_ptr<int>> ch(eng);
  int got = 0;
  auto body = [&]() -> Proc {
    ch.send(std::make_unique<int>(13));
    auto p = co_await ch.recv();
    got = *p;
  };
  spawn(eng, body());
  eng.run();
  EXPECT_EQ(got, 13);
}

TEST(Channel, ManyProducersOneConsumer) {
  Engine eng;
  Channel<int> ch(eng);
  int sum = 0;
  auto producer = [&](int v, double t) -> Proc {
    co_await Delay(eng, t);
    ch.send(v);
  };
  auto consumer = [&]() -> Proc {
    for (int i = 0; i < 10; ++i) sum += co_await ch.recv();
  };
  spawn(eng, consumer());
  for (int i = 1; i <= 10; ++i)
    spawn(eng, producer(i, static_cast<double>(10 - i)));
  eng.run();
  EXPECT_EQ(sum, 55);
}

}  // namespace
}  // namespace cpe::sim
