// Windowed rollups, the SLO rule grammar/engine, and the zero-allocation
// guarantee of the steady-state sampling path (the counting allocator below
// replaces the binary's global allocator, same pattern as engine_test.cpp).
#include "obs/analytics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/engine.hpp"
#include "sim/trace.hpp"

// -- Global allocation counter ------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};

void* counted_alloc(std::size_t n) {
  ++g_heap_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_heap_allocs;
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++g_heap_allocs;
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace cpe::obs {
namespace {

// -- SloRule grammar ----------------------------------------------------------

TEST(SloRule, ParsesPercentileRule) {
  const SloRule r = SloRule::parse("p99(mpvm.stage.freeze) < 0.25");
  EXPECT_EQ(r.agg, SloAgg::kP99);
  EXPECT_EQ(r.series, "mpvm.stage.freeze");
  EXPECT_EQ(r.cmp, SloCmp::kLt);
  EXPECT_DOUBLE_EQ(r.threshold, 0.25);
  EXPECT_EQ(r.for_windows, 1);
  EXPECT_EQ(r.text(), "p99(mpvm.stage.freeze) < 0.25");
}

TEST(SloRule, ParsesForWindowsAndTwoCharCmp) {
  const SloRule r = SloRule::parse("rate(gs.decisions.failed) <= 2 for 3");
  EXPECT_EQ(r.agg, SloAgg::kRate);
  EXPECT_EQ(r.cmp, SloCmp::kLe);
  EXPECT_DOUBLE_EQ(r.threshold, 2.0);
  EXPECT_EQ(r.for_windows, 3);
  EXPECT_EQ(r.text(), "rate(gs.decisions.failed) <= 2 for 3");
}

TEST(SloRule, ParsesWithoutSpacesAndMeanAlias) {
  const SloRule r = SloRule::parse("mean(gs.load.cv)>=0.5");
  EXPECT_EQ(r.agg, SloAgg::kValue);  // mean is the value alias
  EXPECT_EQ(r.series, "gs.load.cv");
  EXPECT_EQ(r.cmp, SloCmp::kGe);
  EXPECT_DOUBLE_EQ(r.threshold, 0.5);
}

TEST(SloRule, ParseRoundTripsThroughText) {
  for (const char* text :
       {"p50(a.b) < 1", "ewma(x) > 0.125", "count(c) >= 10 for 2",
        "min(q.depth) >= 0", "sum(bytes) <= 1048576"}) {
    const SloRule r = SloRule::parse(text);
    const SloRule again = SloRule::parse(r.text());
    EXPECT_EQ(again.text(), r.text()) << text;
  }
}

// -- TimeSeries ring ----------------------------------------------------------

TEST(TimeSeries, RingEvictsOldestAndKeepsTotals) {
  TimeSeries ts("x", SeriesKind::kCounter, 3);
  for (int i = 0; i < 5; ++i) {
    Window w;
    w.t = i;
    ts.push(w);
  }
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.total(), 5u);
  EXPECT_DOUBLE_EQ(ts.window(0).t, 2.0);  // oldest retained
  EXPECT_DOUBLE_EQ(ts.window(2).t, 4.0);  // newest
  ASSERT_NE(ts.latest(), nullptr);
  EXPECT_DOUBLE_EQ(ts.latest()->t, 4.0);
}

// -- Rollups ------------------------------------------------------------------

class AnalyticsFixture : public ::testing::Test {
 protected:
  sim::Engine eng;
  MetricsRegistry reg{&eng};
};

TEST_F(AnalyticsFixture, CounterWindowsDiffMonotonicTotals) {
  AnalyticsOptions opt;
  opt.window = 2.0;
  Analytics an(eng, reg, opt);
  an.track_counter("t.ops");
  Counter& c = reg.counter("t.ops");

  c.inc(10);
  eng.schedule_at(2.0, [] {});
  eng.run();
  an.sample_now();
  const Window* w = an.find("t.ops")->latest();
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->count, 10u);
  EXPECT_DOUBLE_EQ(w->rate, 5.0);  // 10 events / 2 s
  EXPECT_DOUBLE_EQ(w->value, 5.0);

  c.inc(4);
  eng.schedule_at(4.0, [] {});
  eng.run();
  an.sample_now();
  w = an.find("t.ops")->latest();
  EXPECT_EQ(w->count, 4u);  // the delta, not the total of 14
  EXPECT_DOUBLE_EQ(w->rate, 2.0);
}

TEST_F(AnalyticsFixture, GaugeWindowsTrackValueAndEwma) {
  AnalyticsOptions opt;
  opt.window = 1.0;
  opt.ewma_alpha = 0.5;
  Analytics an(eng, reg, opt);
  an.track_gauge("t.depth");
  Gauge& g = reg.gauge("t.depth");

  g.set(1.0);
  eng.schedule_at(1.0, [] {});
  eng.run();
  an.sample_now();
  EXPECT_DOUBLE_EQ(an.find("t.depth")->latest()->ewma, 1.0);  // seeded

  g.set(3.0);
  eng.schedule_at(2.0, [] {});
  eng.run();
  an.sample_now();
  const Window* w = an.find("t.depth")->latest();
  EXPECT_DOUBLE_EQ(w->value, 3.0);
  EXPECT_DOUBLE_EQ(w->ewma, 2.0);  // 0.5*3 + 0.5*1
}

TEST_F(AnalyticsFixture, HistogramWindowsComputeDeltaQuantiles) {
  AnalyticsOptions opt;
  opt.window = 1.0;
  Analytics an(eng, reg, opt);
  an.track_histogram("t.lat");
  Histogram& h = reg.histogram("t.lat");

  // Window 1: 99 fast samples and one slow one.
  for (int i = 0; i < 99; ++i) h.record(0.010);
  h.record(0.800);
  eng.schedule_at(1.0, [] {});
  eng.run();
  an.sample_now();
  const Window* w = an.find("t.lat")->latest();
  EXPECT_EQ(w->count, 100u);
  EXPECT_DOUBLE_EQ(w->rate, 100.0);
  // Log-bucket over-estimate: within one growth factor of exact.
  EXPECT_GE(w->p50, 0.010);
  EXPECT_LE(w->p50, 0.010 * h.options().growth + 1e-12);
  EXPECT_GE(w->p99, 0.010);
  EXPECT_LE(w->p99, 0.020 * h.options().growth);
  EXPECT_GE(w->max, 0.800 - 1e-12);
  EXPECT_NEAR(w->value, (99 * 0.010 + 0.800) / 100.0, 1e-9);

  // Window 2 sees ONLY the new samples: all slow now.
  for (int i = 0; i < 10; ++i) h.record(0.600);
  eng.schedule_at(2.0, [] {});
  eng.run();
  an.sample_now();
  w = an.find("t.lat")->latest();
  EXPECT_EQ(w->count, 10u);
  EXPECT_GE(w->p50, 0.600);
  EXPECT_LE(w->p50, 0.600 * h.options().growth);

  // Window 3 is idle: quantiles zero, EWMA held from window 2.
  const double prev_ewma = w->ewma;
  eng.schedule_at(3.0, [] {});
  eng.run();
  an.sample_now();
  w = an.find("t.lat")->latest();
  EXPECT_EQ(w->count, 0u);
  EXPECT_DOUBLE_EQ(w->p99, 0.0);
  EXPECT_DOUBLE_EQ(w->ewma, prev_ewma);
}

// -- SLO engine ---------------------------------------------------------------

TEST_F(AnalyticsFixture, ViolationFiresCountsAndJournals) {
  sim::TraceLog journal(eng);
  AnalyticsOptions opt;
  opt.window = 1.0;
  Analytics an(eng, reg, opt);
  an.set_journal(&journal);
  an.add_rule("rate(t.ops) < 2");

  int hook_calls = 0;
  double hook_observed = 0;
  an.on_violation([&](const SloViolation& v) {
    ++hook_calls;
    hook_observed = v.observed;
  });

  Counter& c = reg.counter("t.ops");
  c.inc(5);  // 5 ops/s >= 2: violated
  eng.schedule_at(1.0, [] {});
  eng.run();
  an.sample_now();

  ASSERT_EQ(an.violations().size(), 1u);
  const SloViolation& v = an.violations()[0];
  EXPECT_DOUBLE_EQ(v.observed, 5.0);
  EXPECT_DOUBLE_EQ(v.threshold, 2.0);
  EXPECT_EQ(v.streak, 1);
  EXPECT_EQ(hook_calls, 1);
  EXPECT_DOUBLE_EQ(hook_observed, 5.0);
  EXPECT_EQ(reg.counter("analytics.slo.violations").value(), 1u);
  EXPECT_EQ(reg.counter("analytics.slo.rule.rate(t.ops) < 2").value(), 1u);
  ASSERT_FALSE(journal.records().empty());
  EXPECT_EQ(journal.records().back().category, "slo");

  // A healthy window fires nothing and resets the streak.
  c.inc(1);
  eng.schedule_at(2.0, [] {});
  eng.run();
  an.sample_now();
  EXPECT_EQ(an.violations().size(), 1u);
}

TEST_F(AnalyticsFixture, ForWindowsRequiresConsecutiveBreaches) {
  AnalyticsOptions opt;
  opt.window = 1.0;
  Analytics an(eng, reg, opt);
  an.add_rule("rate(t.ops) < 2 for 2");
  Counter& c = reg.counter("t.ops");

  const auto step = [&](std::uint64_t incs) {
    c.inc(incs);
    eng.schedule_at(eng.now() + 1.0, [] {});
    eng.run();
    an.sample_now();
  };

  step(5);  // breach #1: streak 1 < 2, no fire
  EXPECT_TRUE(an.violations().empty());
  step(0);  // healthy: streak resets
  step(5);  // breach #1 again
  EXPECT_TRUE(an.violations().empty());
  step(5);  // breach #2: fires
  ASSERT_EQ(an.violations().size(), 1u);
  EXPECT_EQ(an.violations()[0].streak, 2);
  step(5);  // sustained breach keeps firing each window
  EXPECT_EQ(an.violations().size(), 2u);
}

TEST_F(AnalyticsFixture, AddRuleInfersInstrumentKind) {
  Analytics an(eng, reg);
  reg.histogram("h.lat");
  reg.gauge("g.cv");
  an.add_rule("p99(anything.new) < 1");        // percentile => histogram
  an.add_rule("rate(h.lat) < 10");             // existing histogram wins
  an.add_rule("ewma(g.cv) < 0.5");             // existing gauge wins
  an.add_rule("rate(fresh.counter) < 10");     // default: counter
  EXPECT_EQ(an.find("anything.new")->kind(), SeriesKind::kHistogram);
  EXPECT_EQ(an.find("h.lat")->kind(), SeriesKind::kHistogram);
  EXPECT_EQ(an.find("g.cv")->kind(), SeriesKind::kGauge);
  EXPECT_EQ(an.find("fresh.counter")->kind(), SeriesKind::kCounter);
}

// -- Scheduled sampling -------------------------------------------------------

TEST_F(AnalyticsFixture, StartSamplesOnCadenceAndHonoursHorizon) {
  AnalyticsOptions opt;
  opt.window = 1.0;
  Analytics an(eng, reg, opt);
  an.track_counter("t.ops");
  an.start(/*horizon=*/5.0);
  eng.run();
  EXPECT_EQ(an.windows(), 5u);
  EXPECT_FALSE(an.running());
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
}

TEST_F(AnalyticsFixture, StopCancelsThePendingTick) {
  Analytics an(eng, reg);
  an.track_counter("t.ops");
  an.start();
  an.stop();
  eng.run();  // would never terminate if the tick kept rescheduling
  EXPECT_EQ(an.windows(), 0u);
}

// -- The zero-allocation guarantee -------------------------------------------

TEST_F(AnalyticsFixture, SteadyStateSamplingDoesNotAllocate) {
  AnalyticsOptions opt;
  opt.window = 1.0;
  opt.ring_windows = 8;
  Analytics an(eng, reg, opt);
  sim::TraceLog journal(eng);
  an.set_journal(&journal);
  an.track_counter("t.ops");
  an.track_gauge("t.depth");
  an.track_histogram("t.lat");
  // Armed-but-holding rules: evaluation must be free too.
  an.add_rule("rate(t.ops) < 1e9");
  an.add_rule("p99(t.lat) < 1e9");
  an.add_rule("ewma(t.depth) < 1e9");

  Counter& c = reg.counter("t.ops");
  Gauge& g = reg.gauge("t.depth");
  Histogram& h = reg.histogram("t.lat");

  an.start();
  // Warm-up: first windows seed EWMAs and the engine's event-slot pool.
  for (int i = 0; i < 4; ++i) {
    c.inc(3);
    g.set(1.0 + i);
    h.record(0.005 * (i + 1));
    eng.schedule_at(eng.now() + 1.0, [] {});
    eng.run_until(eng.now() + 1.0);
  }

  const std::uint64_t before = g_heap_allocs.load();
  for (int i = 0; i < 256; ++i) {
    c.inc(7);
    g.set(2.5);
    h.record(0.002);
    h.record(0.750);
    eng.run_until(eng.now() + 1.0);
  }
  EXPECT_EQ(g_heap_allocs.load(), before)
      << "steady-state sampling must not touch the heap";
  EXPECT_TRUE(an.violations().empty());
  an.stop();
}

}  // namespace
}  // namespace cpe::obs
