// TraceAuditor against synthetic span sets.  The deliberately-broken
// fixtures keep the checks honest: an auditor that stops flagging a missing
// flush stage fails here first (and in `ci/check.sh audit`, which runs this
// suite for exactly that reason).
#include "obs/audit.hpp"

#include <gtest/gtest.h>

namespace cpe::obs {
namespace {

SpanRecord span(TraceId trace, SpanId id, SpanId parent, std::string name,
                std::string host, double start, double end,
                SpanStatus status = SpanStatus::kOk) {
  SpanRecord r;
  r.trace_id = trace;
  r.span_id = id;
  r.parent_span = parent;
  r.name = std::move(name);
  r.host = std::move(host);
  r.start = start;
  r.end = end;
  r.status = status;
  return r;
}

SpanRecord instant(TraceId trace, SpanId id, SpanId parent, std::string name,
                   std::string host, double t) {
  SpanRecord r = span(trace, id, parent, std::move(name), std::move(host), t, t);
  r.instant = true;
  return r;
}

/// A well-formed single MPVM migration: freeze/flush/transfer on the source,
/// restart on the destination, flush-time deliveries before restart closes.
std::vector<SpanRecord> clean_mpvm_trace() {
  std::vector<SpanRecord> s;
  s.push_back(span(1, 1, 0, "mpvm.migrate", "host1", 0.0, 10.0));
  s.back().attrs = {{"task", "t0.2"}, {"from", "host1"}, {"to", "host2"}};
  s.push_back(span(1, 2, 1, "mpvm.freeze", "host1", 0.0, 1.0));
  s.back().lamport_start = 1;
  s.push_back(span(1, 3, 1, "mpvm.flush", "host1", 1.0, 2.0));
  s.back().lamport_start = 2;
  s.push_back(span(1, 4, 1, "mpvm.transfer", "host1", 2.0, 8.0));
  s.back().lamport_start = 3;
  s.push_back(span(1, 5, 1, "mpvm.restart", "host2", 8.0, 10.0));
  s.push_back(instant(1, 6, 3, "pvm.deliver", "host1", 1.5));
  s.back().attrs = {{"task", "t0.2"}};
  return s;
}

TEST(TraceAuditor, CleanMigrationAuditsClean) {
  TraceAuditor a(clean_mpvm_trace());
  EXPECT_TRUE(a.audit().empty()) << TraceAuditor::format(a.audit());
  EXPECT_TRUE(a.ok());
}

TEST(TraceAuditor, MissingFlushStageFlagged) {
  auto s = clean_mpvm_trace();
  std::erase_if(s, [](const SpanRecord& r) { return r.name == "mpvm.flush"; });
  const auto v = TraceAuditor(s).audit();
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].invariant, "stage-completeness");
  EXPECT_NE(v[0].detail.find("mpvm.flush"), std::string::npos);
  EXPECT_NE(TraceAuditor::format(v).find("[stage-completeness]"),
            std::string::npos);
}

TEST(TraceAuditor, DuplicateStageFlagged) {
  auto s = clean_mpvm_trace();
  s.push_back(span(1, 7, 1, "mpvm.freeze", "host1", 0.5, 0.6));
  const auto v = TraceAuditor(s).audit();
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].invariant, "stage-completeness");
}

TEST(TraceAuditor, StageOrderViolationFlagged) {
  auto s = clean_mpvm_trace();
  for (auto& r : s)
    if (r.name == "mpvm.flush") {
      r.start = -1.0;  // flush "starts" before freeze
      r.lamport_start = 0;
    }
  const auto v = TraceAuditor(s).audit();
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].invariant, "stage-completeness");
}

TEST(TraceAuditor, DeliveryAfterRestartOnSourceHostFlagged) {
  auto s = clean_mpvm_trace();
  s.push_back(instant(1, 7, 1, "pvm.deliver", "host1", 11.0));
  s.back().attrs = {{"task", "t0.2"}};
  const auto v = TraceAuditor(s).audit();
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].invariant, "flush-completeness");
}

TEST(TraceAuditor, LateDeliveryInUnrelatedTraceNotFlagged) {
  // Concatenated runs reuse host and task names; a delivery in some other
  // trace's causal history is not this migration's flush failure.
  auto s = clean_mpvm_trace();
  s.push_back(instant(2, 100, 0, "pvm.deliver", "host1", 11.0));
  s.back().attrs = {{"task", "t0.2"}};
  EXPECT_TRUE(TraceAuditor(s).ok());
}

TEST(TraceAuditor, DeliveryOnDestinationAfterRestartNotFlagged) {
  auto s = clean_mpvm_trace();
  s.push_back(instant(1, 7, 1, "pvm.deliver", "host2", 11.0));
  s.back().attrs = {{"task", "t0.2"}};
  EXPECT_TRUE(TraceAuditor(s).ok());
}

TEST(TraceAuditor, AbortedWithoutRollbackFlagged) {
  std::vector<SpanRecord> s;
  s.push_back(
      span(1, 1, 0, "mpvm.migrate", "host1", 0.0, 3.0, SpanStatus::kAborted));
  const auto v = TraceAuditor(s).audit();
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].invariant, "abort-handling");
}

TEST(TraceAuditor, AbortedWithRollbackChildPasses) {
  std::vector<SpanRecord> s;
  s.push_back(
      span(1, 1, 0, "mpvm.migrate", "host1", 0.0, 3.0, SpanStatus::kAborted));
  s.push_back(instant(1, 2, 1, "mpvm.rollback", "host1", 3.0));
  EXPECT_TRUE(TraceAuditor(s).ok());
}

TEST(TraceAuditor, AbortedMarkedLostPasses) {
  std::vector<SpanRecord> s;
  s.push_back(
      span(1, 1, 0, "mpvm.migrate", "host1", 0.0, 3.0, SpanStatus::kAborted));
  s.back().attrs = {{"lost", "1"}};
  EXPECT_TRUE(TraceAuditor(s).ok());
}

TEST(TraceAuditor, AbortedWithCheckpointRecoveryPasses) {
  std::vector<SpanRecord> s;
  s.push_back(
      span(1, 1, 0, "mpvm.migrate", "host1", 0.0, 3.0, SpanStatus::kAborted));
  s.push_back(span(1, 2, 0, "ckpt.recover", "host2", 3.0, 5.0));
  EXPECT_TRUE(TraceAuditor(s).ok());
}

TEST(TraceAuditor, FencedMigrationNeedsNoCleanup) {
  std::vector<SpanRecord> s;
  s.push_back(
      span(1, 1, 0, "mpvm.migrate", "host1", 0.0, 0.0, SpanStatus::kFenced));
  EXPECT_TRUE(TraceAuditor(s).ok());
}

TEST(TraceAuditor, DanglingProtocolSpanFlagged) {
  std::vector<SpanRecord> s;
  s.push_back(
      span(1, 1, 0, "gs.vacate", "gs", 0.0, 0.0, SpanStatus::kOpen));
  const auto v = TraceAuditor(s).audit();
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].invariant, "no-dangling");
}

TEST(TraceAuditor, NonProtocolOpenSpanIgnored) {
  std::vector<SpanRecord> s;
  s.push_back(span(1, 1, 0, "app.phase", "host1", 0.0, 0.0, SpanStatus::kOpen));
  EXPECT_TRUE(TraceAuditor(s).ok());
}

TEST(TraceAuditor, EpochRegressionFlagged) {
  std::vector<SpanRecord> s;
  s.push_back(span(1, 1, 0, "gs.vacate", "gs", 0.0, 1.0));
  s.back().attrs = {{"epoch", "3"}};
  s.push_back(span(1, 2, 1, "adm.event", "gs", 0.0, 1.0));
  s.back().attrs = {{"slave", "0"}, {"epoch", "2"}};
  const auto v = TraceAuditor(s).audit();
  bool found = false;
  for (const auto& x : v) found = found || x.invariant == "epoch-monotonicity";
  EXPECT_TRUE(found) << TraceAuditor::format(v);
}

TEST(TraceAuditor, EpochMonotoneAcrossSeparateTraces) {
  // A later trace may legitimately carry a smaller epoch than an unrelated
  // earlier one (e.g. two independent runs concatenated by a bench).
  std::vector<SpanRecord> s;
  s.push_back(span(1, 1, 0, "gs.vacate", "gs", 0.0, 1.0));
  s.back().attrs = {{"epoch", "5"}};
  s.push_back(span(2, 2, 0, "gs.vacate", "gs", 2.0, 3.0));
  s.back().attrs = {{"epoch", "1"}};
  EXPECT_TRUE(TraceAuditor(s).ok());
}

TEST(TraceAuditor, PrecopyChunksUnderPrecopyStagePass) {
  auto s = clean_mpvm_trace();
  s.push_back(span(1, 10, 1, "mpvm.precopy", "host1", 0.0, 0.5));
  s.push_back(span(1, 11, 10, "mpvm.precopy.chunk", "host1", 0.0, 0.2));
  s.push_back(span(1, 12, 10, "mpvm.precopy.chunk", "host1", 0.2, 0.4,
                   SpanStatus::kAborted));  // fallback mid-stream: fine
  EXPECT_TRUE(TraceAuditor(s).ok()) << TraceAuditor::format(TraceAuditor(s).audit());
}

TEST(TraceAuditor, UnclosedPrecopyChunkFlagged) {
  auto s = clean_mpvm_trace();
  s.push_back(span(1, 10, 1, "mpvm.precopy", "host1", 0.0, 0.5));
  s.push_back(span(1, 11, 10, "mpvm.precopy.chunk", "host1", 0.0, 0.0,
                   SpanStatus::kOpen));
  const auto v = TraceAuditor(s).audit();
  bool found = false;
  for (const auto& x : v) found = found || x.invariant == "precopy-completeness";
  EXPECT_TRUE(found) << TraceAuditor::format(v);
}

TEST(TraceAuditor, OrphanPrecopyChunkFlagged) {
  auto s = clean_mpvm_trace();
  // Chunk hung directly off the migration root, skipping the stage span.
  s.push_back(span(1, 11, 1, "mpvm.precopy.chunk", "host1", 0.0, 0.2));
  const auto v = TraceAuditor(s).audit();
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].invariant, "precopy-completeness");
}

TEST(TraceAuditor, ResidualForwardInsideMigratePasses) {
  auto s = clean_mpvm_trace();
  s.push_back(instant(1, 10, 1, "mpvm.residual.forward", "host1", 11.0));
  EXPECT_TRUE(TraceAuditor(s).ok());
}

TEST(TraceAuditor, ResidualForwardOutsideMigrateFlagged) {
  auto s = clean_mpvm_trace();
  // Forward event floating at trace root: cannot be attributed to any
  // relocation, so the skeleton's fencing cannot be audited.
  s.push_back(instant(1, 10, 0, "mpvm.residual.forward", "host1", 11.0));
  const auto v = TraceAuditor(s).audit();
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].invariant, "residual-linkage");
}

}  // namespace
}  // namespace cpe::obs
