// Flight recorder: exactly-one-dump discipline, file self-containment, and
// manual (FaultPlan-style) triggers.
#include "obs/flight.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/analytics.hpp"
#include "obs/span.hpp"
#include "sim/engine.hpp"

namespace cpe::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class FlightFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("flight_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  FlightOptions opts() {
    FlightOptions o;
    o.dir = dir_.string();
    return o;
  }

  std::filesystem::path dir_;
  sim::Engine eng;
  MetricsRegistry reg{&eng};
};

TEST_F(FlightFixture, ViolationProducesExactlyOneDump) {
  AnalyticsOptions aopt;
  aopt.window = 1.0;
  Analytics an(eng, reg, aopt);
  an.add_rule("rate(t.ops) < 1");  // breached every window below
  FlightRecorder rec(an, nullptr, opts());  // max_dumps defaults to 1

  Counter& c = reg.counter("t.ops");
  an.start(/*horizon=*/10.0);
  for (int i = 0; i < 10; ++i)
    eng.schedule_at(i + 0.5, [&c] { c.inc(100); });
  eng.run();

  EXPECT_GT(an.violations().size(), 1u);  // sustained breach...
  EXPECT_EQ(rec.dumps(), 1u);             // ...but one dump only
  EXPECT_EQ(rec.suppressed(), an.violations().size() - 1);
  ASSERT_EQ(rec.files().size(), 1u);

  const std::string doc = slurp(rec.files()[0]);
  EXPECT_NE(doc.find("\"flight\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"reason\": \"slo\""), std::string::npos);
  EXPECT_NE(doc.find("rate(t.ops) < 1"), std::string::npos);
  EXPECT_NE(doc.find("\"series\""), std::string::npos);
  EXPECT_NE(doc.find("\"kind\": \"counter\""), std::string::npos);
  // The dump froze the violation that fired it, not a null.
  EXPECT_EQ(doc.find("\"violation\": null"), std::string::npos);
}

TEST_F(FlightFixture, ManualTriggerEmbedsSpanTail) {
  Analytics an(eng, reg);
  an.track_gauge("t.depth");
  reg.gauge("t.depth").set(7.0);
  eng.schedule_at(1.0, [] {});
  eng.run();
  an.sample_now();

  SpanTracer spans(eng);
  const SpanId root = spans.begin_span({}, "mpvm.migrate", "hostA");
  spans.end_span(root, SpanStatus::kOk);

  FlightRecorder rec(an, &spans, opts());
  EXPECT_TRUE(rec.trigger("fault:host-freeze"));
  ASSERT_EQ(rec.files().size(), 1u);
  const std::string doc = slurp(rec.files()[0]);
  EXPECT_NE(doc.find("\"reason\": \"fault:host-freeze\""), std::string::npos);
  EXPECT_NE(doc.find("\"violation\": null"), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"mpvm.migrate\""), std::string::npos);
  EXPECT_NE(doc.find("\"host\":\"hostA\""), std::string::npos);
  EXPECT_NE(doc.find("\"value\":7"), std::string::npos);  // the gauge window
  // Capped: a second trigger is suppressed.
  EXPECT_FALSE(rec.trigger("fault:again"));
  EXPECT_EQ(rec.suppressed(), 1u);
}

TEST_F(FlightFixture, CooldownSpacesDumpsInVirtualTime) {
  Analytics an(eng, reg);
  FlightOptions o = opts();
  o.max_dumps = 8;
  o.cooldown = 5.0;
  FlightRecorder rec(an, nullptr, o);

  EXPECT_TRUE(rec.trigger("one"));       // t = 0
  EXPECT_FALSE(rec.trigger("too-soon")); // still t = 0
  eng.schedule_at(5.0, [] {});
  eng.run();
  EXPECT_TRUE(rec.trigger("two"));       // t = 5: cooldown satisfied
  EXPECT_EQ(rec.dumps(), 2u);
  EXPECT_EQ(rec.suppressed(), 1u);
  EXPECT_EQ(rec.files().size(), 2u);
  EXPECT_NE(rec.files()[0], rec.files()[1]);
}

TEST_F(FlightFixture, HookDetachesWithRecorderLifetime) {
  Analytics an(eng, reg);
  an.add_rule("rate(t.ops) < 1");
  {
    FlightRecorder rec(an, nullptr, opts());
  }  // destroyed: hook removed
  reg.counter("t.ops").inc(50);
  eng.schedule_at(1.0, [] {});
  eng.run();
  an.sample_now();  // fires a violation into a dead recorder? no: no crash
  EXPECT_FALSE(an.violations().empty());
  EXPECT_TRUE(std::filesystem::is_empty(dir_));
}

}  // namespace
}  // namespace cpe::obs
