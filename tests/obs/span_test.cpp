#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/engine.hpp"

namespace cpe::obs {
namespace {

struct SpanTracerTest : ::testing::Test {
  sim::Engine eng;
  SpanTracer tr{eng};
};

TEST_F(SpanTracerTest, MintsFreshTraceForInvalidContext) {
  const SpanId a = tr.begin_span({}, "root.a", "host1");
  const SpanId b = tr.begin_span({}, "root.b", "host1");
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, a);
  const SpanRecord* ra = tr.find(a);
  const SpanRecord* rb = tr.find(b);
  ASSERT_NE(ra, nullptr);
  ASSERT_NE(rb, nullptr);
  EXPECT_NE(ra->trace_id, 0u);
  EXPECT_NE(ra->trace_id, rb->trace_id);  // separate roots, separate traces
  EXPECT_EQ(ra->parent_span, 0u);
}

TEST_F(SpanTracerTest, ChildSpansInheritTraceAndParent) {
  const SpanId root = tr.begin_span({}, "mig", "host1");
  const SpanId child = tr.begin_span(tr.context_of(root), "stage", "host1");
  const SpanRecord* rc = tr.find(child);
  ASSERT_NE(rc, nullptr);
  EXPECT_EQ(rc->trace_id, tr.find(root)->trace_id);
  EXPECT_EQ(rc->parent_span, root);
  EXPECT_EQ(tr.by_trace(rc->trace_id).size(), 2u);
}

TEST_F(SpanTracerTest, EndSpanStampsTimeAndStatus) {
  const SpanId s = tr.begin_span({}, "work", "host1");
  eng.schedule_at(2.5, [&] { tr.end_span(s, SpanStatus::kAborted); });
  eng.run();
  const SpanRecord* r = tr.find(s);
  EXPECT_DOUBLE_EQ(r->start, 0.0);
  EXPECT_DOUBLE_EQ(r->end, 2.5);
  EXPECT_DOUBLE_EQ(r->duration(), 2.5);
  EXPECT_EQ(r->status, SpanStatus::kAborted);
}

TEST_F(SpanTracerTest, EventIsInstantAndClosed) {
  const SpanId root = tr.begin_span({}, "mig", "host1");
  const SpanId ev = tr.event(tr.context_of(root), "rollback", "host1");
  const SpanRecord* r = tr.find(ev);
  EXPECT_TRUE(r->instant);
  EXPECT_EQ(r->status, SpanStatus::kOk);
  EXPECT_EQ(r->parent_span, root);
}

TEST_F(SpanTracerTest, AnnotateAndAttrLookup) {
  const SpanId s = tr.begin_span({}, "mig", "host1");
  tr.annotate(s, "task", "t0.2");
  tr.annotate(s, "bytes", "1024");
  const SpanRecord* r = tr.find(s);
  ASSERT_NE(r->attr("task"), nullptr);
  EXPECT_EQ(*r->attr("task"), "t0.2");
  EXPECT_EQ(*r->attr("bytes"), "1024");
  EXPECT_EQ(r->attr("missing"), nullptr);
}

TEST_F(SpanTracerTest, LamportClockAdvancesOnSendAndReceive) {
  EXPECT_EQ(tr.clock("host1"), 0u);
  EXPECT_EQ(tr.on_send("host1"), 1u);
  EXPECT_EQ(tr.on_send("host1"), 2u);
  // Receive with a stamp ahead of the local clock jumps past it...
  tr.on_receive("host2", 2);
  EXPECT_EQ(tr.clock("host2"), 3u);
  // ...and a stale stamp still ticks the clock forward.
  tr.on_receive("host2", 1);
  EXPECT_EQ(tr.clock("host2"), 4u);
  EXPECT_EQ(tr.clock("host1"), 2u);  // per-host, independent
}

TEST_F(SpanTracerTest, SpansSnapshotLamportClock) {
  (void)tr.on_send("host1");
  const SpanId s = tr.begin_span({}, "mig", "host1");
  (void)tr.on_send("host1");
  (void)tr.on_send("host1");
  tr.end_span(s);
  const SpanRecord* r = tr.find(s);
  EXPECT_EQ(r->lamport_start, 1u);
  EXPECT_EQ(r->lamport_end, 3u);
}

TEST_F(SpanTracerTest, RingEvictsOldestAndCountsDropped) {
  tr.set_capacity(4);
  std::vector<SpanId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(tr.begin_span({}, "s", "h"));
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.dropped(), 2u);
  EXPECT_EQ(tr.find(ids[0]), nullptr);  // fell off the ring
  EXPECT_EQ(tr.find(ids[1]), nullptr);
  ASSERT_NE(tr.find(ids[5]), nullptr);
  // Ending an evicted span is a harmless no-op.
  tr.end_span(ids[0], SpanStatus::kOk);
}

TEST_F(SpanTracerTest, SetCapacityHasDocumentedFloor) {
  tr.set_capacity(0);
  EXPECT_GE(tr.capacity(), 2u);
  (void)tr.begin_span({}, "a", "h");
  (void)tr.begin_span({}, "b", "h");
  (void)tr.begin_span({}, "c", "h");
  EXPECT_EQ(tr.size(), tr.capacity());
  EXPECT_GT(tr.dropped(), 0u);
}

TEST_F(SpanTracerTest, ChromeTraceShape) {
  const SpanId root = tr.begin_span({}, "mpvm.migrate", "host1", 7);
  (void)tr.event(tr.context_of(root), "pvm.deliver", "host2", 7);
  tr.end_span(root);
  std::ostringstream os;
  write_chrome_trace(tr, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(out.find("\"process_name\""), std::string::npos);
  EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);  // complete span
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(out.find("host1"), std::string::npos);
  EXPECT_NE(out.find("host2"), std::string::npos);
}

TEST_F(SpanTracerTest, ChromeTraceVectorOverloadMatchesTracer) {
  const SpanId root = tr.begin_span({}, "mpvm.migrate", "host1");
  tr.end_span(root);
  std::ostringstream from_tracer;
  write_chrome_trace(tr, from_tracer);
  const std::vector<SpanRecord> copy(tr.spans().begin(), tr.spans().end());
  std::ostringstream from_vector;
  write_chrome_trace(copy, from_vector);
  EXPECT_EQ(from_tracer.str(), from_vector.str());
}

TEST_F(SpanTracerTest, JsonlAlwaysEmitsDroppedTrailer) {
  (void)tr.begin_span({}, "a", "h");
  std::ostringstream os;
  write_spans_jsonl(tr, os);
  EXPECT_NE(os.str().find("{\"dropped\":0}"), std::string::npos);
  std::ostringstream os2;
  write_spans_jsonl(std::vector<SpanRecord>{}, 5, os2);
  EXPECT_EQ(os2.str(), "{\"dropped\":5}\n");
}

}  // namespace
}  // namespace cpe::obs
