// Critical-path extraction over synthetic span sets, including the S-case
// the analytics must never fudge: aborted / watchdog-killed / truncated
// migrations are skipped AND counted, never averaged into the table.
#include "obs/trace_analytics.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cpe::obs {
namespace {

SpanRecord span(TraceId trace, SpanId id, SpanId parent, std::string name,
                double start, double end,
                SpanStatus status = SpanStatus::kOk) {
  SpanRecord r;
  r.trace_id = trace;
  r.span_id = id;
  r.parent_span = parent;
  r.name = std::move(name);
  r.host = "host1";
  r.start = start;
  r.end = end;
  r.status = status;
  return r;
}

/// A clean stop-and-copy migration: transfer dominates (6 s of 10 s).
std::vector<SpanRecord> clean_migration(TraceId trace, SpanId base,
                                        double t0 = 0.0) {
  std::vector<SpanRecord> s;
  s.push_back(span(trace, base, 0, "mpvm.migrate", t0, t0 + 10.0));
  s.push_back(span(trace, base + 1, base, "mpvm.freeze", t0, t0 + 1.0));
  s.push_back(span(trace, base + 2, base, "mpvm.flush", t0 + 1.0, t0 + 2.0));
  s.push_back(span(trace, base + 3, base, "mpvm.transfer", t0 + 2.0, t0 + 8.0));
  s.push_back(span(trace, base + 4, base, "mpvm.restart", t0 + 8.0, t0 + 10.0));
  return s;
}

TEST(TraceAnalytics, CleanMigrationFullCoverageTransferDominates) {
  TraceAnalytics ta(clean_migration(1, 1));
  ASSERT_EQ(ta.migrations(), 1u);
  EXPECT_EQ(ta.traces_skipped(), 0u);
  const MigrationPath& p = ta.paths()[0];
  EXPECT_DOUBLE_EQ(p.wall, 10.0);
  EXPECT_DOUBLE_EQ(p.stage_total, 10.0);
  EXPECT_DOUBLE_EQ(p.coverage, 1.0);
  EXPECT_EQ(p.dominant, "mpvm.transfer");
  EXPECT_DOUBLE_EQ(p.dominant_time, 6.0);
  EXPECT_DOUBLE_EQ(ta.coverage_min(), 1.0);
}

TEST(TraceAnalytics, StageTableQuantilesWithinFineGeometryBound) {
  std::vector<SpanRecord> s;
  SpanId id = 1;
  for (int i = 0; i < 8; ++i) {
    auto m = clean_migration(static_cast<TraceId>(i + 1), id,
                             static_cast<double>(i) * 20.0);
    s.insert(s.end(), m.begin(), m.end());
    id += 5;
  }
  TraceAnalytics ta(s);
  ASSERT_EQ(ta.migrations(), 8u);
  const auto table = ta.stage_table();
  ASSERT_EQ(table.size(), 4u);  // freeze, flush, restart, transfer
  std::uint64_t dominant_sum = 0;
  for (const StageStats& st : table) {
    dominant_sum += st.dominant;
    EXPECT_EQ(st.count, 8u) << st.stage;
    EXPECT_LE(st.p50, st.p95) << st.stage;
    EXPECT_LE(st.p95, st.p99) << st.stage;
  }
  // Critical-path attribution is a partition of the migrations.
  EXPECT_EQ(dominant_sum, ta.migrations());
  // All transfers took exactly 6 s: the fine-geometry estimate must sit
  // within +9.05% of exact.
  const StageStats* transfer = nullptr;
  for (const StageStats& st : table)
    if (st.stage == "mpvm.transfer") transfer = &st;
  ASSERT_NE(transfer, nullptr);
  EXPECT_EQ(transfer->dominant, 8u);
  EXPECT_GE(transfer->p99, 6.0);
  EXPECT_LE(transfer->p99, 6.0 * TraceAnalytics::kFineGeometry.growth);
}

TEST(TraceAnalytics, AbortedRootIsSkippedAndCounted) {
  auto s = clean_migration(1, 1);
  s[0].status = SpanStatus::kAborted;  // watchdog / rollback killed it
  auto more = clean_migration(2, 10);
  s.insert(s.end(), more.begin(), more.end());

  MetricsRegistry reg;
  TraceAnalytics ta(s, &reg);
  EXPECT_EQ(ta.migrations(), 1u);  // only the clean one
  EXPECT_EQ(ta.traces_skipped(), 1u);
  EXPECT_EQ(reg.counter("analytics.traces_skipped").value(), 1u);
  // The aborted migration's stages must NOT pollute the table.
  const auto table = ta.stage_table();
  for (const StageStats& st : table) EXPECT_EQ(st.count, 1u) << st.stage;
}

TEST(TraceAnalytics, FencedAndOpenRootsAreSkipped) {
  auto s = clean_migration(1, 1);
  s[0].status = SpanStatus::kFenced;
  auto open = clean_migration(2, 10);
  open[0].status = SpanStatus::kOpen;
  s.insert(s.end(), open.begin(), open.end());
  TraceAnalytics ta(s);
  EXPECT_EQ(ta.migrations(), 0u);
  EXPECT_EQ(ta.traces_skipped(), 2u);
  EXPECT_DOUBLE_EQ(ta.coverage_min(), 1.0);  // vacuous
  EXPECT_DOUBLE_EQ(ta.coverage_mean(), 1.0);
}

TEST(TraceAnalytics, OpenStageChildSkipsTheWholeMigration) {
  auto s = clean_migration(1, 1);
  s[3].status = SpanStatus::kOpen;  // transfer never closed (ring cut)
  TraceAnalytics ta(s);
  EXPECT_EQ(ta.migrations(), 0u);
  EXPECT_EQ(ta.traces_skipped(), 1u);
}

TEST(TraceAnalytics, RootWithoutStageChildrenIsSkipped) {
  std::vector<SpanRecord> s;
  s.push_back(span(1, 1, 0, "mpvm.migrate", 0.0, 10.0));
  TraceAnalytics ta(s);
  EXPECT_EQ(ta.migrations(), 0u);
  EXPECT_EQ(ta.traces_skipped(), 1u);
}

TEST(TraceAnalytics, AbortedPrecopyUnderOkRootStillCounts) {
  // Pre-copy gave up, protocol fell back to stop-and-copy, migration
  // succeeded: a normal path whose precopy time is real wall time.
  auto s = clean_migration(1, 1);
  s.push_back(
      span(1, 6, 1, "mpvm.precopy", 0.0, 3.0, SpanStatus::kAborted));
  TraceAnalytics ta(s);
  ASSERT_EQ(ta.migrations(), 1u);
  EXPECT_EQ(ta.traces_skipped(), 0u);
  EXPECT_DOUBLE_EQ(ta.paths()[0].stage_total, 13.0);
  ASSERT_NE(ta.stage_histogram("mpvm.precopy"), nullptr);
  EXPECT_EQ(ta.stage_histogram("mpvm.precopy")->count(), 1u);
}

TEST(TraceAnalytics, InstantChildrenAndForeignSpansIgnored) {
  auto s = clean_migration(1, 1);
  SpanRecord ev = span(1, 6, 1, "mpvm.rollback", 5.0, 5.0);
  ev.instant = true;
  s.push_back(ev);
  s.push_back(span(2, 10, 0, "gs.rebalance", 0.0, 1.0));  // not a migration
  TraceAnalytics ta(s);
  EXPECT_EQ(ta.migrations(), 1u);
  EXPECT_EQ(ta.traces_skipped(), 0u);
  EXPECT_DOUBLE_EQ(ta.paths()[0].stage_total, 10.0);
}

TEST(TraceAnalytics, PartialCoverageReported) {
  // Stages cover only 8 of 10 s (a 2 s unattributed gap).
  std::vector<SpanRecord> s;
  s.push_back(span(1, 1, 0, "mpvm.migrate", 0.0, 10.0));
  s.push_back(span(1, 2, 1, "mpvm.freeze", 0.0, 2.0));
  s.push_back(span(1, 3, 1, "mpvm.transfer", 4.0, 10.0));
  TraceAnalytics ta(s);
  ASSERT_EQ(ta.migrations(), 1u);
  EXPECT_DOUBLE_EQ(ta.coverage_min(), 0.8);
  EXPECT_DOUBLE_EQ(ta.coverage_mean(), 0.8);
}

TEST(TraceAnalytics, WriteJsonEmitsSchemaAndExtras) {
  TraceAnalytics ta(clean_migration(1, 1));
  std::ostringstream os;
  ta.write_json(os, "table2", "\"slo\": {\"rules\": 0}");
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"bench\": \"analytics\""), std::string::npos);
  EXPECT_NE(doc.find("\"source\": \"table2\""), std::string::npos);
  EXPECT_NE(doc.find("\"migrations\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"stage\": \"mpvm.transfer\""), std::string::npos);
  EXPECT_NE(doc.find("\"slo\": {\"rules\": 0}"), std::string::npos);
  EXPECT_NE(doc.find("\"coverage_min\": 1"), std::string::npos);
}

}  // namespace
}  // namespace cpe::obs
