#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <vector>

#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/trace.hpp"

namespace cpe::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, TracksLastValueAndRunningMax) {
  Gauge g;
  EXPECT_FALSE(g.observed());
  EXPECT_EQ(g.max(), 0.0);
  g.set(3.0);
  g.set(7.0);
  g.set(2.0);
  EXPECT_TRUE(g.observed());
  EXPECT_EQ(g.value(), 2.0);
  EXPECT_EQ(g.max(), 7.0);
  g.add(-5.0);
  EXPECT_EQ(g.value(), -3.0);
  EXPECT_EQ(g.max(), 7.0);
}

TEST(Gauge, MaxWorksForAllNegativeValues) {
  Gauge g;
  g.set(-9.0);
  g.set(-4.0);
  g.set(-6.0);
  EXPECT_EQ(g.max(), -4.0);  // not the 0 a naive `max_=0` init would give
}

TEST(Histogram, BucketGeometryMatchesTheDocumentedRule) {
  // Bucket i covers (first * growth^(i-1), first * growth^i], last = overflow.
  Histogram h({.first_bound = 1.0, .growth = 2.0, .buckets = 4});
  EXPECT_EQ(h.bucket_bound(0), 1.0);
  EXPECT_EQ(h.bucket_bound(1), 2.0);
  EXPECT_EQ(h.bucket_bound(2), 4.0);
  EXPECT_TRUE(std::isinf(h.bucket_bound(3)));

  h.record(0.5);    // bucket 0
  h.record(1.0);    // bucket 0 (bound is inclusive)
  h.record(1.001);  // bucket 1
  h.record(2.0);    // bucket 1
  h.record(3.0);    // bucket 2
  h.record(100.0);  // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.min(), 0.5);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 107.501);
}

TEST(Histogram, EmptyHistogramIsAllZeros) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, NegativeSamplesClampAndNonFiniteSamplesDrop) {
  // Stage timers subtract virtual times; FP noise can nudge a zero-length
  // span negative — clamp those to 0.  NaN/Infinity can only come from a
  // genuine instrumentation bug: dropping them keeps sum()/mean() finite
  // (one NaN used to poison them forever) and bad_samples() counts them.
  Histogram h;
  h.record(-1e-15);
  h.record(std::numeric_limits<double>::quiet_NaN());
  h.record(std::numeric_limits<double>::infinity());
  h.record(-std::numeric_limits<double>::infinity());
  h.record(2.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bad_samples(), 3u);
  EXPECT_EQ(h.sum(), 2.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 2.0);
  EXPECT_DOUBLE_EQ(h.mean(), 1.0);
  EXPECT_TRUE(std::isfinite(h.quantile(0.99)));
}

TEST(Gauge, NonFiniteSamplesAreDroppedNotStored) {
  Gauge g;
  g.set(5.0);
  g.set(std::numeric_limits<double>::quiet_NaN());
  g.set(std::numeric_limits<double>::infinity());
  g.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(g.value(), 5.0);  // last good value stands
  EXPECT_EQ(g.max(), 5.0);
  EXPECT_EQ(g.bad_samples(), 3u);
  g.set(6.0);
  EXPECT_EQ(g.value(), 6.0);
}

TEST(Registry, BadSamplesSurfaceAsACounter) {
  MetricsRegistry reg;
  reg.gauge("g").set(std::numeric_limits<double>::quiet_NaN());
  reg.histogram("h").record(std::numeric_limits<double>::infinity());
  reg.collect();
  const Counter* bad = reg.find_counter("obs.bad_samples");
  ASSERT_NE(bad, nullptr);
  EXPECT_EQ(bad->value(), 2u);
  // The counter accumulates deltas, not totals, across collects.
  reg.collect();
  EXPECT_EQ(bad->value(), 2u);
  reg.histogram("h").record(std::numeric_limits<double>::quiet_NaN());
  std::ostringstream os;
  reg.write_jsonl(os);
  EXPECT_EQ(bad->value(), 3u);
  EXPECT_NE(os.str().find("\"obs.bad_samples\",\"value\":3"),
            std::string::npos);
}

TEST(Histogram, QuantilesLandWithinOneBucketAndClampToMax) {
  Histogram h({.first_bound = 1.0, .growth = 2.0, .buckets = 16});
  for (int i = 0; i < 90; ++i) h.record(1.5);  // bucket (1,2]
  for (int i = 0; i < 10; ++i) h.record(50.0);  // bucket (32,64]
  EXPECT_EQ(h.quantile(0.5), 2.0);   // p50 in the (1,2] bucket
  EXPECT_EQ(h.quantile(0.9), 2.0);   // exactly at the cumulative edge
  EXPECT_EQ(h.quantile(0.99), 50.0); // clamped to observed max, not 64
  EXPECT_EQ(h.quantile(1.0), 50.0);
}

TEST(Registry, CreatesOnFirstUseAndReturnsTheSameInstrument) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("a.count");
  c1.inc(5);
  EXPECT_EQ(&reg.counter("a.count"), &c1);
  EXPECT_EQ(reg.counter("a.count").value(), 5u);
  EXPECT_EQ(reg.size(), 1u);
  reg.gauge("a.gauge").set(1.0);
  reg.histogram("a.hist").record(1.0);
  EXPECT_EQ(reg.size(), 3u);

  EXPECT_EQ(reg.find_counter("a.count"), &c1);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_gauge("missing"), nullptr);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
}

TEST(Registry, CollectorsRunAtEverySnapshot) {
  MetricsRegistry reg;
  int pulls = 0;
  reg.add_collector([&](MetricsRegistry& r) {
    ++pulls;
    r.gauge("pulled.value").set(static_cast<double>(pulls));
  });
  reg.collect();
  EXPECT_EQ(pulls, 1);
  std::ostringstream os;
  reg.write_jsonl(os);  // write runs the collectors too
  EXPECT_EQ(pulls, 2);
  EXPECT_NE(os.str().find("\"pulled.value\""), std::string::npos);
}

TEST(Registry, JsonlExportIsSortedStrictAndSparse) {
  sim::Engine eng;
  MetricsRegistry reg(&eng);
  reg.counter("z.last").inc(3);
  reg.counter("a.first").inc(1);
  reg.gauge("g.depth").set(2.5);
  Histogram& h = reg.histogram("h.lat", {.first_bound = 1.0, .growth = 2.0,
                                         .buckets = 8});
  h.record(1.5);
  h.record(100.0);  // overflow bucket -> "le":null
  reg.histogram("h.empty");

  std::ostringstream os;
  reg.write_jsonl(os);
  const std::string out = os.str();

  // Counters export name-sorted, before gauges and histograms.
  const auto a = out.find("\"a.first\"");
  const auto z = out.find("\"z.last\"");
  const auto g = out.find("\"g.depth\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  ASSERT_NE(g, std::string::npos);
  EXPECT_LT(a, z);
  EXPECT_LT(z, g);

  // Strict JSON: no NaN/Infinity tokens, even with an empty histogram.
  EXPECT_EQ(out.find("nan"), std::string::npos);
  EXPECT_EQ(out.find("inf"), std::string::npos);

  // Sparse buckets: two samples -> exactly two bucket entries, the overflow
  // one exported as "le":null.
  EXPECT_NE(out.find("\"buckets\":[{\"le\":2,\"n\":1},{\"le\":null,\"n\":1}]"),
            std::string::npos);
  // Empty histogram exports count 0 (the CI smoke rejects it loudly).
  EXPECT_NE(out.find("\"name\":\"h.empty\",\"count\":0"), std::string::npos);
}

TEST(StageTimer, MeasuresVirtualTimeOnCommit) {
  sim::Engine eng;
  Histogram h;
  auto timer = std::make_unique<StageTimer>(eng, h);
  eng.schedule_at(2.5, [&] {
    EXPECT_DOUBLE_EQ(timer->elapsed(), 2.5);
    EXPECT_DOUBLE_EQ(timer->commit(), 2.5);
    timer->commit();  // idempotent: records once
  });
  eng.run();
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.5);
}

TEST(StageTimer, DestructorCommitsAndCancelDrops) {
  sim::Engine eng;
  Histogram h;
  auto committing = std::make_unique<StageTimer>(eng, h);
  auto cancelled = std::make_unique<StageTimer>(eng, h);
  eng.schedule_at(1.25, [&] {
    cancelled->cancel();
    cancelled.reset();   // records nothing
    committing.reset();  // destructor records 1.25
  });
  eng.run();
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.25);
}

TEST(TraceExport, EscapesAndReportsDrops) {
  sim::Engine eng;
  sim::TraceLog log(eng);
  log.set_capacity(sim::TraceLog::kMinCapacity);
  log.log("cat", "first (will be dropped)");
  log.log("cat", "quote \" backslash \\ newline \n tab \t");
  for (std::size_t i = 1; i < sim::TraceLog::kMinCapacity; ++i)
    log.log("cat", "filler");
  std::ostringstream os;
  write_trace_jsonl(log, os);
  const std::string out = os.str();
  EXPECT_EQ(out.find("will be dropped"), std::string::npos);
  EXPECT_NE(out.find("quote \\\" backslash \\\\ newline \\n tab \\t"),
            std::string::npos);
  EXPECT_NE(out.find("{\"dropped\":1}"), std::string::npos);
}

TEST(TraceExport, DroppedTrailerAlwaysPresent) {
  sim::Engine eng;
  sim::TraceLog log(eng);
  log.log("cat", "only record");
  std::ostringstream os;
  write_trace_jsonl(log, os);
  // No overflow, but the trailer still closes the file: consumers can tell
  // "no drops" from "trailer missing".
  EXPECT_NE(os.str().find("{\"dropped\":0}"), std::string::npos);
}

TEST(JsonEscape, ControlCharactersBecomeUnicodeEscapes) {
  EXPECT_EQ(json_escape("a\x01"
                        "b"),
            "a\\u0001b");
  EXPECT_EQ(json_escape("plain"), "plain");
}

// -- Quantile error bound -----------------------------------------------------
// Pins the bound documented on Histogram::quantile: against the exact
// rank-⌈qn⌉ order statistic, the estimate never under-reports and
// over-reports by strictly less than one growth factor (for samples at or
// above first_bound).  Checked on three distribution shapes and two bucket
// geometries, with the deterministic sim::Rng.

void check_quantile_bound(const HistogramOptions& opt,
                          const std::vector<double>& samples,
                          const char* label) {
  Histogram h(opt);
  for (const double v : samples) h.record(v);
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  for (const double q : {0.50, 0.90, 0.99}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    const double exact = sorted[rank > 0 ? rank - 1 : 0];
    const double est = h.quantile(q);
    if (exact >= opt.first_bound) {
      EXPECT_GE(est, exact) << label << " q=" << q;
      EXPECT_LT(est, exact * opt.growth) << label << " q=" << q;
    } else {
      EXPECT_LE(est, opt.first_bound) << label << " q=" << q;
    }
  }
}

TEST(Histogram, QuantileErrorBound) {
  sim::Rng rng(0xfeedbeef);
  std::vector<double> uniform, expo, bimodal;
  for (int i = 0; i < 10000; ++i) {
    uniform.push_back(rng.uniform(1e-3, 10.0));
    // Inverse-CDF exponential with mean 0.05 (a freeze-like latency).
    expo.push_back(-0.05 * std::log(1.0 - rng.uniform()));
    // Fast path vs slow path: the shape percentile gates exist for.
    bimodal.push_back(rng.uniform() < 0.9 ? 0.01 : 5.0);
  }
  const HistogramOptions coarse;  // growth 2, the runtime default
  // The TraceAnalytics offline geometry: growth 2^(1/8).
  const HistogramOptions fine{/*first_bound=*/1e-5,
                              /*growth=*/1.0905077326652577,
                              /*buckets=*/320};
  for (const HistogramOptions* opt : {&coarse, &fine}) {
    check_quantile_bound(*opt, uniform, "uniform");
    check_quantile_bound(*opt, expo, "exponential");
    check_quantile_bound(*opt, bimodal, "bimodal");
  }
}

// -- Snapshot diffing ---------------------------------------------------------

TEST(MetricsSnapshot, DiffsMonotonicTotals) {
  sim::Engine eng;
  MetricsRegistry reg(&eng);
  reg.counter("a").inc(10);
  const MetricsSnapshot before = reg.snapshot();
  EXPECT_DOUBLE_EQ(before.t, 0.0);
  EXPECT_EQ(before.value("a"), 10u);
  EXPECT_EQ(before.value("missing"), 0u);

  reg.counter("a").inc(5);
  reg.counter("born.later").inc(3);
  eng.schedule_at(2.0, [] {});
  eng.run();
  const MetricsSnapshot after = reg.snapshot();
  EXPECT_DOUBLE_EQ(after.t, 2.0);
  EXPECT_EQ(after.delta(before, "a"), 5u);
  // A counter born between snapshots diffs from zero, not from garbage.
  EXPECT_EQ(after.delta(before, "born.later"), 3u);
  EXPECT_EQ(after.delta(before, "missing"), 0u);
}

TEST(MetricsSnapshot, RunsCollectorsSoPullSourcesAreIncluded) {
  MetricsRegistry reg;
  int pulls = 0;
  reg.add_collector([&pulls](MetricsRegistry& r) {
    r.counter("pulled").inc();
    ++pulls;
  });
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(pulls, 1);
  EXPECT_EQ(snap.value("pulled"), 1u);
}

}  // namespace
}  // namespace cpe::obs
