#include "os/host.hpp"

#include <gtest/gtest.h>

namespace cpe::os {
namespace {

struct HostFixture : ::testing::Test {
  sim::Engine eng;
  net::Network net{eng};
  Host h1{eng, net, HostConfig("host1", "HPPA", 1.0)};
  Host h2{eng, net, HostConfig("host2", "HPPA", 1.0)};
  Host sparc{eng, net, HostConfig("sol1", "SPARC", 0.8)};
};

TEST_F(HostFixture, HostsRegisterOnNetwork) {
  EXPECT_EQ(net.node_count(), 3u);
  EXPECT_EQ(net.node_name(h1.node()), "host1");
  EXPECT_EQ(net.node_name(sparc.node()), "sol1");
}

TEST_F(HostFixture, MigrationCompatibilityIsByArch) {
  EXPECT_TRUE(h1.migration_compatible_with(h2));
  EXPECT_TRUE(h2.migration_compatible_with(h1));
  EXPECT_FALSE(h1.migration_compatible_with(sparc));
}

TEST_F(HostFixture, CreateAndFindProcess) {
  Process& p = h1.create_process("opt_slave");
  EXPECT_EQ(p.name(), "opt_slave");
  EXPECT_EQ(h1.find(p.pid()), &p);
  EXPECT_EQ(h1.find(9999), nullptr);
  EXPECT_EQ(h1.process_count(), 1u);
}

TEST_F(HostFixture, PidsAreUniquePerHost) {
  Process& a = h1.create_process("a");
  Process& b = h1.create_process("b");
  EXPECT_NE(a.pid(), b.pid());
}

TEST_F(HostFixture, ProcessRunsProgramOnHostCpu) {
  Process& p = h1.create_process("worker");
  double done_at = -1;
  auto program = [&]() -> sim::Proc {
    co_await p.compute(3.0);
    done_at = eng.now();
  };
  p.run(program());
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 3.0);
}

TEST_F(HostFixture, KillAbortsProgramMidBurst) {
  Process& p = h1.create_process("victim");
  bool completed = false;
  auto program = [&]() -> sim::Proc {
    co_await p.compute(100.0);
    completed = true;
  };
  p.run(program());
  eng.run_until(1.0);
  EXPECT_EQ(h1.cpu().job_count(), 1u);
  p.kill();
  EXPECT_FALSE(p.alive());
  EXPECT_EQ(h1.cpu().job_count(), 0u);
  eng.run();
  EXPECT_FALSE(completed);
}

TEST_F(HostFixture, ReapRemovesProcess) {
  Process& p = h1.create_process("tmp");
  const Pid pid = p.pid();
  h1.reap(pid);
  EXPECT_EQ(h1.find(pid), nullptr);
  EXPECT_EQ(h1.process_count(), 0u);
  h1.reap(pid);  // idempotent
}

TEST_F(HostFixture, SignalDeliveredAsynchronously) {
  Process& p = h1.create_process("sig");
  double handled_at = -1;
  p.set_signal_handler(Signal::kMigrate, [&] { handled_at = eng.now(); });
  eng.schedule_at(2.0, [&] { p.deliver_signal(Signal::kMigrate); });
  eng.run();
  EXPECT_NEAR(handled_at, 2.0 + h1.config().signal_latency, 1e-12);
}

TEST_F(HostFixture, SignalWithoutHandlerIgnored) {
  Process& p = h1.create_process("sig");
  p.deliver_signal(Signal::kUsr1);
  eng.run();
  SUCCEED();
}

TEST_F(HostFixture, SignalToDeadProcessDropped) {
  Process& p = h1.create_process("sig");
  bool handled = false;
  p.set_signal_handler(Signal::kMigrate, [&] { handled = true; });
  p.deliver_signal(Signal::kMigrate);
  p.kill();  // dies before the handler latency elapses
  eng.run();
  EXPECT_FALSE(handled);
}

TEST_F(HostFixture, HandlerReplacement) {
  Process& p = h1.create_process("sig");
  int which = 0;
  p.set_signal_handler(Signal::kUsr1, [&] { which = 1; });
  p.set_signal_handler(Signal::kUsr1, [&] { which = 2; });
  p.deliver_signal(Signal::kUsr1);
  eng.run();
  EXPECT_EQ(which, 2);
}

TEST_F(HostFixture, LibraryGuardTracksNesting) {
  Process& p = h1.create_process("lib");
  EXPECT_FALSE(p.in_library());
  {
    auto g1 = p.enter_library();
    EXPECT_TRUE(p.in_library());
    {
      auto g2 = p.enter_library();
      EXPECT_TRUE(p.in_library());
    }
    EXPECT_TRUE(p.in_library());
  }
  EXPECT_FALSE(p.in_library());
}

TEST_F(HostFixture, LibraryExitFiresTrigger) {
  Process& p = h1.create_process("lib");
  double fired_at = -1;
  auto waiter = [&]() -> sim::Proc {
    co_await p.library_exited().wait();
    fired_at = eng.now();
  };
  auto worker = [&]() -> sim::Proc {
    auto g = p.enter_library();
    co_await p.compute(4.0);
  };
  p.run(worker());
  sim::spawn(eng, waiter());
  eng.run();
  EXPECT_DOUBLE_EQ(fired_at, 4.0);
}

TEST_F(HostFixture, MemoryImageMigratableBytes) {
  Process& p = h1.create_process("img");
  p.image().data_bytes = 1'000'000;
  p.image().heap_bytes = 200'000;
  p.image().stack_bytes = 64 * 1024;
  p.image().context_bytes = 4096;
  EXPECT_EQ(p.image().migratable_bytes(),
            1'000'000u + 200'000u + 64u * 1024 + 4096u);
}

TEST_F(HostFixture, ReleaseAndAdoptMovesProcessBetweenHosts) {
  Process& p = h1.create_process("mover");
  const Pid pid = p.pid();
  double done_at = -1;
  auto program = [&]() -> sim::Proc {
    co_await p.compute(2.0);
    done_at = eng.now();
  };
  p.run(program());
  std::unique_ptr<Process> moved = h1.release(pid);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(h1.find(pid), nullptr);
  Process& q = h2.adopt(std::move(moved));
  EXPECT_EQ(&q.host(), &h2);
  EXPECT_EQ(h2.find(pid), &q);
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 2.0);
}

TEST_F(HostFixture, ReleaseUnknownPidReturnsNull) {
  EXPECT_EQ(h1.release(424242), nullptr);
}

TEST_F(HostFixture, CrashKillsProcessesDetachesNicAndNotifies) {
  Process& p = h1.create_process("victim");
  bool completed = false;
  auto program = [&]() -> sim::Proc {
    co_await p.compute(100.0);
    completed = true;
  };
  p.run(program());
  std::vector<HostEvent> events;
  h1.add_observer([&](Host&, HostEvent ev) { events.push_back(ev); });

  eng.schedule_at(1.0, [&] { h1.crash(); });
  eng.run();
  EXPECT_FALSE(h1.up());
  EXPECT_FALSE(p.alive());
  EXPECT_FALSE(completed);
  EXPECT_FALSE(net.ethernet().attached(h1.node()));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], HostEvent::kCrash);

  h1.recover();
  EXPECT_TRUE(h1.up());
  EXPECT_TRUE(net.ethernet().attached(h1.node()));
  EXPECT_EQ(h1.process_count(), 0u);  // the zombie was reaped on reboot
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1], HostEvent::kRecover);
}

TEST_F(HostFixture, CrashStrandsCrashRecoverableProcess) {
  Process& p = h1.create_process("watched");
  p.set_crash_recoverable(true);
  bool completed = false;
  auto program = [&]() -> sim::Proc {
    co_await p.compute(10.0);
    completed = true;
  };
  p.run(program());
  eng.schedule_at(1.0, [&] { h1.crash(); });
  eng.run();
  // Spared, not killed: the process survives for checkpoint recovery, but
  // its burst is detached so it makes no progress.
  EXPECT_TRUE(p.alive());
  EXPECT_FALSE(completed);
  EXPECT_EQ(h1.find(p.pid()), &p);
  h1.recover();
  EXPECT_EQ(h1.process_count(), 1u);  // still stranded after the reboot
}

TEST_F(HostFixture, FreezeStallsComputeAndUnfreezeResumesIt) {
  Process& p = h1.create_process("worker");
  double done_at = -1;
  auto program = [&]() -> sim::Proc {
    co_await p.compute(4.0);
    done_at = eng.now();
  };
  p.run(program());
  eng.schedule_at(1.0, [&] { h1.freeze(); });
  eng.schedule_at(6.0, [&] { h1.unfreeze(); });
  eng.run();
  EXPECT_TRUE(p.alive());
  // 1 s of work, 5 s frozen, then the remaining 3 s: done at t=9.
  EXPECT_DOUBLE_EQ(done_at, 9.0);
}

TEST_F(HostFixture, CrashAndRecoverAreIdempotent) {
  h1.crash();
  h1.crash();  // no-op
  EXPECT_FALSE(h1.up());
  h1.recover();
  h1.recover();  // no-op
  EXPECT_TRUE(h1.up());
}

}  // namespace
}  // namespace cpe::os
