#include "os/cpu.hpp"

#include <gtest/gtest.h>

#include "sim/wait.hpp"

namespace cpe::os {
namespace {

struct CpuFixture : ::testing::Test {
  sim::Engine eng;
  CpuScheduler cpu{eng, 1.0};
};

TEST_F(CpuFixture, SingleJobRunsAtFullSpeed) {
  double done_at = -1;
  auto body = [&]() -> sim::Proc {
    co_await cpu.compute(5.0);
    done_at = eng.now();
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 5.0);
}

TEST_F(CpuFixture, TwoJobsShareTheProcessor) {
  double a_done = -1, b_done = -1;
  auto job = [&](double work, double* done) -> sim::Proc {
    co_await cpu.compute(work);
    *done = eng.now();
  };
  sim::spawn(eng, job(5.0, &a_done));
  sim::spawn(eng, job(5.0, &b_done));
  eng.run();
  // Equal 5s jobs sharing one CPU both finish at t=10.
  EXPECT_DOUBLE_EQ(a_done, 10.0);
  EXPECT_DOUBLE_EQ(b_done, 10.0);
}

TEST_F(CpuFixture, ShortJobFinishesThenLongJobSpeedsUp) {
  double short_done = -1, long_done = -1;
  auto job = [&](double work, double* done) -> sim::Proc {
    co_await cpu.compute(work);
    *done = eng.now();
  };
  sim::spawn(eng, job(2.0, &short_done));
  sim::spawn(eng, job(6.0, &long_done));
  eng.run();
  // Shared until t=4 (each has 2s of service); then the long job has 4s
  // left at full speed -> finishes at 8.
  EXPECT_DOUBLE_EQ(short_done, 4.0);
  EXPECT_DOUBLE_EQ(long_done, 8.0);
}

TEST_F(CpuFixture, FasterCpuFinishesProportionallySooner) {
  CpuScheduler fast(eng, 2.0);
  double done_at = -1;
  auto body = [&]() -> sim::Proc {
    co_await fast.compute(6.0);
    done_at = eng.now();
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 3.0);
}

TEST_F(CpuFixture, ExternalLoadSlowsApplicationJobs) {
  cpu.set_external_jobs(1);
  double done_at = -1;
  auto body = [&]() -> sim::Proc {
    co_await cpu.compute(5.0);
    done_at = eng.now();
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 10.0);  // half the CPU
}

TEST_F(CpuFixture, ExternalLoadArrivingMidBurstStretchesIt) {
  double done_at = -1;
  auto body = [&]() -> sim::Proc {
    co_await cpu.compute(6.0);
    done_at = eng.now();
  };
  sim::spawn(eng, body());
  eng.schedule_at(2.0, [&] { cpu.set_external_jobs(1); });
  eng.run();
  // 2s at full speed (4 left), then half speed -> 8 more seconds.
  EXPECT_DOUBLE_EQ(done_at, 10.0);
}

TEST_F(CpuFixture, ExternalLoadDepartingMidBurstShrinksIt) {
  cpu.set_external_jobs(1);
  double done_at = -1;
  auto body = [&]() -> sim::Proc {
    co_await cpu.compute(6.0);
    done_at = eng.now();
  };
  sim::spawn(eng, body());
  eng.schedule_at(4.0, [&] { cpu.set_external_jobs(0); });
  eng.run();
  // 4s at half speed (2s of work done), then 4s at full speed.
  EXPECT_DOUBLE_EQ(done_at, 8.0);
}

TEST_F(CpuFixture, ZeroWorkCompletesImmediately) {
  double done_at = -1;
  auto body = [&]() -> sim::Proc {
    co_await cpu.compute(0.0);
    done_at = eng.now();
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
}

TEST_F(CpuFixture, PauseAndResumeOnSameCpuPreservesWork) {
  std::shared_ptr<CpuJob> slot;
  double done_at = -1;
  auto body = [&]() -> sim::Proc {
    co_await cpu.compute(10.0, &slot);
    done_at = eng.now();
  };
  sim::spawn(eng, body());
  eng.schedule_at(3.0, [&] {
    ASSERT_NE(slot, nullptr);
    cpu.detach(slot);
    EXPECT_NEAR(slot->remaining, 7.0, 1e-9);
  });
  eng.schedule_at(5.0, [&] { cpu.adopt(slot); });
  eng.run();
  // 3s of progress, 2s paused, 7s more.
  EXPECT_DOUBLE_EQ(done_at, 12.0);
}

TEST_F(CpuFixture, MigrateBurstToFasterCpu) {
  CpuScheduler fast(eng, 2.0);
  std::shared_ptr<CpuJob> slot;
  double done_at = -1;
  auto body = [&]() -> sim::Proc {
    co_await cpu.compute(10.0, &slot);
    done_at = eng.now();
  };
  sim::spawn(eng, body());
  eng.schedule_at(4.0, [&] {
    cpu.detach(slot);
    fast.adopt(slot);  // 6s of work left at speed 2 -> 3 more seconds
  });
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 7.0);
}

TEST_F(CpuFixture, SlotClearedAfterCompletion) {
  std::shared_ptr<CpuJob> slot;
  auto body = [&]() -> sim::Proc { co_await cpu.compute(1.0, &slot); };
  sim::spawn(eng, body());
  eng.run_until(0.5);
  EXPECT_NE(slot, nullptr);
  eng.run();
  EXPECT_EQ(slot, nullptr);
}

TEST_F(CpuFixture, AbortedJobLeavesScheduler) {
  auto body = [&]() -> sim::Proc {
    co_await cpu.compute(100.0);
    ADD_FAILURE() << "must not complete";
  };
  sim::ProcHandle h = sim::launch(eng, body());
  eng.run_until(1.0);
  EXPECT_EQ(cpu.job_count(), 1u);
  h.abort();
  EXPECT_EQ(cpu.job_count(), 0u);
  eng.run();
}

TEST_F(CpuFixture, WorkDoneAccounting) {
  auto body = [&]() -> sim::Proc { co_await cpu.compute(3.5); };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_NEAR(cpu.work_done(), 3.5, 1e-9);
}

TEST_F(CpuFixture, LoadReflectsJobsAndExternal) {
  cpu.set_external_jobs(2);
  auto body = [&]() -> sim::Proc { co_await cpu.compute(5.0); };
  sim::spawn(eng, body());
  eng.run_until(1.0);
  EXPECT_DOUBLE_EQ(cpu.load(), 3.0);
  eng.run();
  EXPECT_DOUBLE_EQ(cpu.load(), 2.0);
}

TEST_F(CpuFixture, ManyEqualJobsFinishTogether) {
  const int n = 8;
  int finished = 0;
  double last = -1;
  auto body = [&]() -> sim::Proc {
    co_await cpu.compute(1.0);
    ++finished;
    last = eng.now();
  };
  for (int i = 0; i < n; ++i) sim::spawn(eng, body());
  eng.run();
  EXPECT_EQ(finished, n);
  EXPECT_NEAR(last, static_cast<double>(n), 1e-9);
}

TEST_F(CpuFixture, VanishingResidueAtLargeClockValueStillCompletes) {
  // Regression: settle() can leave a work residue just above kWorkEpsilon;
  // past t=2^14 the clock ULP (3.6e-12) exceeds the residue's completion
  // delay, so `now + dt == now` and the completion event used to re-arm
  // itself at the same instant forever.  The reschedule must force at
  // least one representable tick of advance instead.
  eng.run_until(16384.0);
  double done_at = -1;
  auto body = [&]() -> sim::Proc {
    co_await cpu.compute(1.5e-12);  // > kWorkEpsilon, < half a clock ULP
    done_at = eng.now();
  };
  sim::spawn(eng, body());
  eng.run(10'000);  // a livelock blows this budget instantly
  EXPECT_GE(done_at, 16384.0);
}

TEST_F(CpuFixture, StaggeredArrivalsProcessorSharingMath) {
  // Job A (4s) starts at t=0; job B (4s) starts at t=2.
  // t in [0,2): A alone, A does 2s.  t in [2,?): shared.
  // A has 2s left, B has 4s; A finishes after 4 more wall seconds (t=6);
  // then B (2s left) alone finishes at t=8.
  double a_done = -1, b_done = -1;
  auto job = [&](double delay, double* done) -> sim::Proc {
    co_await sim::Delay(eng, delay);
    co_await cpu.compute(4.0);
    *done = eng.now();
  };
  sim::spawn(eng, job(0.0, &a_done));
  sim::spawn(eng, job(2.0, &b_done));
  eng.run();
  EXPECT_DOUBLE_EQ(a_done, 6.0);
  EXPECT_DOUBLE_EQ(b_done, 8.0);
}

}  // namespace
}  // namespace cpe::os
