#include "os/owner.hpp"

#include <gtest/gtest.h>

namespace cpe::os {
namespace {

struct OwnerFixture : ::testing::Test {
  sim::Engine eng;
  net::Network net{eng};
  Host h1{eng, net, HostConfig("host1")};
  Host h2{eng, net, HostConfig("host2")};
};

TEST_F(OwnerFixture, ScriptedArrivalAppliesExternalLoad) {
  ScriptedOwner owner(eng, {OwnerEvent(5.0, h1, OwnerAction::kArrive, 2)});
  owner.start();
  eng.run_until(4.9);
  EXPECT_EQ(h1.cpu().external_jobs(), 0);
  eng.run_until(5.1);
  EXPECT_EQ(h1.cpu().external_jobs(), 2);
  EXPECT_EQ(h2.cpu().external_jobs(), 0);
}

TEST_F(OwnerFixture, ScriptedDepartRemovesLoad) {
  ScriptedOwner owner(eng, {OwnerEvent(1.0, h1, OwnerAction::kArrive, 1),
                            OwnerEvent(3.0, h1, OwnerAction::kDepart, 1)});
  owner.start();
  eng.run_until(2.0);
  EXPECT_EQ(h1.cpu().external_jobs(), 1);
  eng.run();
  EXPECT_EQ(h1.cpu().external_jobs(), 0);
}

TEST_F(OwnerFixture, DepartNeverGoesNegative) {
  ScriptedOwner owner(eng, {OwnerEvent(1.0, h1, OwnerAction::kDepart, 5)});
  owner.start();
  eng.run();
  EXPECT_EQ(h1.cpu().external_jobs(), 0);
}

TEST_F(OwnerFixture, ObserverSeesEventsInOrder) {
  std::vector<std::pair<double, OwnerAction>> seen;
  ScriptedOwner owner(eng, {OwnerEvent(1.0, h1, OwnerAction::kArrive),
                            OwnerEvent(2.0, h1, OwnerAction::kReclaim),
                            OwnerEvent(3.0, h1, OwnerAction::kDepart)});
  owner.set_observer(
      [&](const OwnerEvent& ev) { seen.emplace_back(ev.t, ev.action); });
  owner.start();
  eng.run();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].second, OwnerAction::kArrive);
  EXPECT_EQ(seen[1].second, OwnerAction::kReclaim);
  EXPECT_EQ(seen[2].second, OwnerAction::kDepart);
}

TEST_F(OwnerFixture, OwnerLoadSlowsCoLocatedTask) {
  Process& p = h1.create_process("victim");
  double done_at = -1;
  auto program = [&]() -> sim::Proc {
    co_await p.compute(10.0);
    done_at = eng.now();
  };
  p.run(program());
  ScriptedOwner owner(eng, {OwnerEvent(5.0, h1, OwnerAction::kArrive, 1)});
  owner.start();
  eng.run();
  // 5s alone + remaining 5s at half speed = 15s total.
  EXPECT_DOUBLE_EQ(done_at, 15.0);
}

TEST_F(OwnerFixture, StochasticOwnerAlternatesAndBalances) {
  StochasticOwner::Params params;
  params.mean_idle = 10.0;
  params.mean_busy = 10.0;
  StochasticOwner owner(eng, {&h1, &h2}, params, sim::Rng(42));
  int arrives = 0, departs = 0;
  owner.set_observer([&](const OwnerEvent& ev) {
    if (ev.action == OwnerAction::kDepart)
      ++departs;
    else
      ++arrives;
  });
  owner.start(/*until=*/1000.0);
  eng.run();
  EXPECT_GT(arrives, 20);
  // Every busy period closes.
  EXPECT_EQ(arrives, departs);
  EXPECT_EQ(h1.cpu().external_jobs(), 0);
  EXPECT_EQ(h2.cpu().external_jobs(), 0);
}

TEST_F(OwnerFixture, StochasticReclaimProbability) {
  StochasticOwner::Params params;
  params.mean_idle = 5.0;
  params.mean_busy = 5.0;
  params.reclaim_probability = 1.0;
  StochasticOwner owner(eng, {&h1}, params, sim::Rng(7));
  int reclaims = 0, others = 0;
  owner.set_observer([&](const OwnerEvent& ev) {
    if (ev.action == OwnerAction::kReclaim)
      ++reclaims;
    else if (ev.action == OwnerAction::kArrive)
      ++others;
  });
  owner.start(200.0);
  eng.run();
  EXPECT_GT(reclaims, 0);
  EXPECT_EQ(others, 0);
}

TEST_F(OwnerFixture, StochasticIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    sim::Engine eng2;
    net::Network net2(eng2);
    Host host(eng2, net2, HostConfig("h"));
    StochasticOwner::Params params;
    params.mean_idle = 7.0;
    params.mean_busy = 3.0;
    StochasticOwner owner(eng2, {&host}, params, sim::Rng(seed));
    std::vector<double> times;
    owner.set_observer(
        [&](const OwnerEvent& ev) { times.push_back(ev.t); });
    owner.start(500.0);
    eng2.run();
    return times;
  };
  EXPECT_EQ(run_once(3), run_once(3));
  EXPECT_NE(run_once(3), run_once(4));
}

}  // namespace
}  // namespace cpe::os
