file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_upvm_accept.dir/bench_ablation_upvm_accept.cpp.o"
  "CMakeFiles/bench_ablation_upvm_accept.dir/bench_ablation_upvm_accept.cpp.o.d"
  "bench_ablation_upvm_accept"
  "bench_ablation_upvm_accept.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_upvm_accept.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
