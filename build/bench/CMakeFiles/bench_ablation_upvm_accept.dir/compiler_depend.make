# Empty compiler generated dependencies file for bench_ablation_upvm_accept.
# This may be replaced when dependencies are built.
