file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ulp_address_map.dir/bench_fig2_ulp_address_map.cpp.o"
  "CMakeFiles/bench_fig2_ulp_address_map.dir/bench_fig2_ulp_address_map.cpp.o.d"
  "bench_fig2_ulp_address_map"
  "bench_fig2_ulp_address_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ulp_address_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
