file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_mpvm_migration.dir/bench_table2_mpvm_migration.cpp.o"
  "CMakeFiles/bench_table2_mpvm_migration.dir/bench_table2_mpvm_migration.cpp.o.d"
  "bench_table2_mpvm_migration"
  "bench_table2_mpvm_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_mpvm_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
