# Empty dependencies file for bench_table2_mpvm_migration.
# This may be replaced when dependencies are built.
