file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_routes.dir/bench_ablation_routes.cpp.o"
  "CMakeFiles/bench_ablation_routes.dir/bench_ablation_routes.cpp.o.d"
  "bench_ablation_routes"
  "bench_ablation_routes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_routes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
