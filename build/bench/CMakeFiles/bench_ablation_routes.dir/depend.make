# Empty dependencies file for bench_ablation_routes.
# This may be replaced when dependencies are built.
