file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_safepoints.dir/bench_ablation_safepoints.cpp.o"
  "CMakeFiles/bench_ablation_safepoints.dir/bench_ablation_safepoints.cpp.o.d"
  "bench_ablation_safepoints"
  "bench_ablation_safepoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_safepoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
