# Empty compiler generated dependencies file for bench_ablation_safepoints.
# This may be replaced when dependencies are built.
