file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_handoff.dir/bench_ablation_handoff.cpp.o"
  "CMakeFiles/bench_ablation_handoff.dir/bench_ablation_handoff.cpp.o.d"
  "bench_ablation_handoff"
  "bench_ablation_handoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
