# Empty dependencies file for bench_fig3_upvm_stages.
# This may be replaced when dependencies are built.
