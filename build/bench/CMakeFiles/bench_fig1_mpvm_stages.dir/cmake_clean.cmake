file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_mpvm_stages.dir/bench_fig1_mpvm_stages.cpp.o"
  "CMakeFiles/bench_fig1_mpvm_stages.dir/bench_fig1_mpvm_stages.cpp.o.d"
  "bench_fig1_mpvm_stages"
  "bench_fig1_mpvm_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_mpvm_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
