# Empty dependencies file for bench_fig4_adm_fsm_trace.
# This may be replaced when dependencies are built.
