file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_adm_fsm_trace.dir/bench_fig4_adm_fsm_trace.cpp.o"
  "CMakeFiles/bench_fig4_adm_fsm_trace.dir/bench_fig4_adm_fsm_trace.cpp.o.d"
  "bench_fig4_adm_fsm_trace"
  "bench_fig4_adm_fsm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_adm_fsm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
