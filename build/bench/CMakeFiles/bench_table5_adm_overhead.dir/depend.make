# Empty dependencies file for bench_table5_adm_overhead.
# This may be replaced when dependencies are built.
