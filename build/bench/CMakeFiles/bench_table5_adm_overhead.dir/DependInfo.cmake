
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table5_adm_overhead.cpp" "bench/CMakeFiles/bench_table5_adm_overhead.dir/bench_table5_adm_overhead.cpp.o" "gcc" "bench/CMakeFiles/bench_table5_adm_overhead.dir/bench_table5_adm_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gs/CMakeFiles/cpe_gs.dir/DependInfo.cmake"
  "/root/repo/build/src/mpvm/CMakeFiles/cpe_mpvm.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/opt/CMakeFiles/cpe_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/upvm/CMakeFiles/cpe_upvm.dir/DependInfo.cmake"
  "/root/repo/build/src/adm/CMakeFiles/cpe_adm.dir/DependInfo.cmake"
  "/root/repo/build/src/pvm/CMakeFiles/cpe_pvm.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/cpe_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cpe_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cpe_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
