file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_adm_migration.dir/bench_table6_adm_migration.cpp.o"
  "CMakeFiles/bench_table6_adm_migration.dir/bench_table6_adm_migration.cpp.o.d"
  "bench_table6_adm_migration"
  "bench_table6_adm_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_adm_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
