# Empty compiler generated dependencies file for bench_table6_adm_migration.
# This may be replaced when dependencies are built.
