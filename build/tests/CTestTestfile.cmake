# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_pvm[1]_include.cmake")
include("/root/repo/build/tests/test_mpvm[1]_include.cmake")
include("/root/repo/build/tests/test_upvm[1]_include.cmake")
include("/root/repo/build/tests/test_adm[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_gs[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
