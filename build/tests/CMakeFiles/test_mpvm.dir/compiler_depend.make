# Empty compiler generated dependencies file for test_mpvm.
# This may be replaced when dependencies are built.
