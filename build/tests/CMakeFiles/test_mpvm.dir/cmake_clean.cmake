file(REMOVE_RECURSE
  "CMakeFiles/test_mpvm.dir/mpvm/checkpoint_test.cpp.o"
  "CMakeFiles/test_mpvm.dir/mpvm/checkpoint_test.cpp.o.d"
  "CMakeFiles/test_mpvm.dir/mpvm/mpvm_stress_test.cpp.o"
  "CMakeFiles/test_mpvm.dir/mpvm/mpvm_stress_test.cpp.o.d"
  "CMakeFiles/test_mpvm.dir/mpvm/mpvm_test.cpp.o"
  "CMakeFiles/test_mpvm.dir/mpvm/mpvm_test.cpp.o.d"
  "test_mpvm"
  "test_mpvm.pdb"
  "test_mpvm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
