file(REMOVE_RECURSE
  "CMakeFiles/test_os.dir/os/cpu_test.cpp.o"
  "CMakeFiles/test_os.dir/os/cpu_test.cpp.o.d"
  "CMakeFiles/test_os.dir/os/host_test.cpp.o"
  "CMakeFiles/test_os.dir/os/host_test.cpp.o.d"
  "CMakeFiles/test_os.dir/os/owner_test.cpp.o"
  "CMakeFiles/test_os.dir/os/owner_test.cpp.o.d"
  "test_os"
  "test_os.pdb"
  "test_os[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
