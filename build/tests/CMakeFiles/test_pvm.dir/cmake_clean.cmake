file(REMOVE_RECURSE
  "CMakeFiles/test_pvm.dir/pvm/buffer_test.cpp.o"
  "CMakeFiles/test_pvm.dir/pvm/buffer_test.cpp.o.d"
  "CMakeFiles/test_pvm.dir/pvm/direct_route_test.cpp.o"
  "CMakeFiles/test_pvm.dir/pvm/direct_route_test.cpp.o.d"
  "CMakeFiles/test_pvm.dir/pvm/lifecycle_test.cpp.o"
  "CMakeFiles/test_pvm.dir/pvm/lifecycle_test.cpp.o.d"
  "CMakeFiles/test_pvm.dir/pvm/mailbox_test.cpp.o"
  "CMakeFiles/test_pvm.dir/pvm/mailbox_test.cpp.o.d"
  "CMakeFiles/test_pvm.dir/pvm/system_test.cpp.o"
  "CMakeFiles/test_pvm.dir/pvm/system_test.cpp.o.d"
  "CMakeFiles/test_pvm.dir/pvm/tid_test.cpp.o"
  "CMakeFiles/test_pvm.dir/pvm/tid_test.cpp.o.d"
  "test_pvm"
  "test_pvm.pdb"
  "test_pvm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
