
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pvm/buffer_test.cpp" "tests/CMakeFiles/test_pvm.dir/pvm/buffer_test.cpp.o" "gcc" "tests/CMakeFiles/test_pvm.dir/pvm/buffer_test.cpp.o.d"
  "/root/repo/tests/pvm/direct_route_test.cpp" "tests/CMakeFiles/test_pvm.dir/pvm/direct_route_test.cpp.o" "gcc" "tests/CMakeFiles/test_pvm.dir/pvm/direct_route_test.cpp.o.d"
  "/root/repo/tests/pvm/lifecycle_test.cpp" "tests/CMakeFiles/test_pvm.dir/pvm/lifecycle_test.cpp.o" "gcc" "tests/CMakeFiles/test_pvm.dir/pvm/lifecycle_test.cpp.o.d"
  "/root/repo/tests/pvm/mailbox_test.cpp" "tests/CMakeFiles/test_pvm.dir/pvm/mailbox_test.cpp.o" "gcc" "tests/CMakeFiles/test_pvm.dir/pvm/mailbox_test.cpp.o.d"
  "/root/repo/tests/pvm/system_test.cpp" "tests/CMakeFiles/test_pvm.dir/pvm/system_test.cpp.o" "gcc" "tests/CMakeFiles/test_pvm.dir/pvm/system_test.cpp.o.d"
  "/root/repo/tests/pvm/tid_test.cpp" "tests/CMakeFiles/test_pvm.dir/pvm/tid_test.cpp.o" "gcc" "tests/CMakeFiles/test_pvm.dir/pvm/tid_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pvm/CMakeFiles/cpe_pvm.dir/DependInfo.cmake"
  "/root/repo/build/src/mpvm/CMakeFiles/cpe_mpvm.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/cpe_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cpe_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cpe_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
