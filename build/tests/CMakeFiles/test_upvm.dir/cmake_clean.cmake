file(REMOVE_RECURSE
  "CMakeFiles/test_upvm.dir/upvm/address_map_test.cpp.o"
  "CMakeFiles/test_upvm.dir/upvm/address_map_test.cpp.o.d"
  "CMakeFiles/test_upvm.dir/upvm/upvm_migration_test.cpp.o"
  "CMakeFiles/test_upvm.dir/upvm/upvm_migration_test.cpp.o.d"
  "CMakeFiles/test_upvm.dir/upvm/upvm_test.cpp.o"
  "CMakeFiles/test_upvm.dir/upvm/upvm_test.cpp.o.d"
  "test_upvm"
  "test_upvm.pdb"
  "test_upvm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_upvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
