# Empty dependencies file for test_upvm.
# This may be replaced when dependencies are built.
