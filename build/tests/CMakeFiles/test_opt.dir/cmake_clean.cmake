file(REMOVE_RECURSE
  "CMakeFiles/test_opt.dir/opt/exemplars_test.cpp.o"
  "CMakeFiles/test_opt.dir/opt/exemplars_test.cpp.o.d"
  "CMakeFiles/test_opt.dir/opt/network_test.cpp.o"
  "CMakeFiles/test_opt.dir/opt/network_test.cpp.o.d"
  "CMakeFiles/test_opt.dir/opt/opt_app_test.cpp.o"
  "CMakeFiles/test_opt.dir/opt/opt_app_test.cpp.o.d"
  "test_opt"
  "test_opt.pdb"
  "test_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
