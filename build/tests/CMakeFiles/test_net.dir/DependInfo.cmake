
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/datagram_test.cpp" "tests/CMakeFiles/test_net.dir/net/datagram_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/datagram_test.cpp.o.d"
  "/root/repo/tests/net/ethernet_test.cpp" "tests/CMakeFiles/test_net.dir/net/ethernet_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/ethernet_test.cpp.o.d"
  "/root/repo/tests/net/tcp_test.cpp" "tests/CMakeFiles/test_net.dir/net/tcp_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/tcp_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cpe_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cpe_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
