file(REMOVE_RECURSE
  "CMakeFiles/test_adm.dir/adm/events_test.cpp.o"
  "CMakeFiles/test_adm.dir/adm/events_test.cpp.o.d"
  "CMakeFiles/test_adm.dir/adm/fsm_test.cpp.o"
  "CMakeFiles/test_adm.dir/adm/fsm_test.cpp.o.d"
  "CMakeFiles/test_adm.dir/adm/partition_test.cpp.o"
  "CMakeFiles/test_adm.dir/adm/partition_test.cpp.o.d"
  "test_adm"
  "test_adm.pdb"
  "test_adm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
