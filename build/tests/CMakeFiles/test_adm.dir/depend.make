# Empty dependencies file for test_adm.
# This may be replaced when dependencies are built.
