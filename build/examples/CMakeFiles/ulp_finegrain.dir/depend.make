# Empty dependencies file for ulp_finegrain.
# This may be replaced when dependencies are built.
