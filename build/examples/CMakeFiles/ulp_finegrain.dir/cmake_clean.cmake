file(REMOVE_RECURSE
  "CMakeFiles/ulp_finegrain.dir/ulp_finegrain.cpp.o"
  "CMakeFiles/ulp_finegrain.dir/ulp_finegrain.cpp.o.d"
  "ulp_finegrain"
  "ulp_finegrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulp_finegrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
