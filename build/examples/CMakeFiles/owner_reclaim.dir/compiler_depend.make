# Empty compiler generated dependencies file for owner_reclaim.
# This may be replaced when dependencies are built.
