file(REMOVE_RECURSE
  "CMakeFiles/owner_reclaim.dir/owner_reclaim.cpp.o"
  "CMakeFiles/owner_reclaim.dir/owner_reclaim.cpp.o.d"
  "owner_reclaim"
  "owner_reclaim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/owner_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
