file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_adm.dir/heterogeneous_adm.cpp.o"
  "CMakeFiles/heterogeneous_adm.dir/heterogeneous_adm.cpp.o.d"
  "heterogeneous_adm"
  "heterogeneous_adm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_adm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
