# Empty dependencies file for heterogeneous_adm.
# This may be replaced when dependencies are built.
