file(REMOVE_RECURSE
  "libcpe_sim.a"
)
