file(REMOVE_RECURSE
  "CMakeFiles/cpe_sim.dir/engine.cpp.o"
  "CMakeFiles/cpe_sim.dir/engine.cpp.o.d"
  "CMakeFiles/cpe_sim.dir/trace.cpp.o"
  "CMakeFiles/cpe_sim.dir/trace.cpp.o.d"
  "CMakeFiles/cpe_sim.dir/wait.cpp.o"
  "CMakeFiles/cpe_sim.dir/wait.cpp.o.d"
  "libcpe_sim.a"
  "libcpe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
