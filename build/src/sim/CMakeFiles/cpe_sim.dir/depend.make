# Empty dependencies file for cpe_sim.
# This may be replaced when dependencies are built.
