# Empty compiler generated dependencies file for cpe_gs.
# This may be replaced when dependencies are built.
