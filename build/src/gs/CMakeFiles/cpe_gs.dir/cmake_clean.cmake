file(REMOVE_RECURSE
  "CMakeFiles/cpe_gs.dir/scheduler.cpp.o"
  "CMakeFiles/cpe_gs.dir/scheduler.cpp.o.d"
  "libcpe_gs.a"
  "libcpe_gs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpe_gs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
