file(REMOVE_RECURSE
  "libcpe_gs.a"
)
