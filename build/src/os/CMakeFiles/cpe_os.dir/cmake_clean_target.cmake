file(REMOVE_RECURSE
  "libcpe_os.a"
)
