# Empty compiler generated dependencies file for cpe_os.
# This may be replaced when dependencies are built.
