
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/cpu.cpp" "src/os/CMakeFiles/cpe_os.dir/cpu.cpp.o" "gcc" "src/os/CMakeFiles/cpe_os.dir/cpu.cpp.o.d"
  "/root/repo/src/os/host.cpp" "src/os/CMakeFiles/cpe_os.dir/host.cpp.o" "gcc" "src/os/CMakeFiles/cpe_os.dir/host.cpp.o.d"
  "/root/repo/src/os/owner.cpp" "src/os/CMakeFiles/cpe_os.dir/owner.cpp.o" "gcc" "src/os/CMakeFiles/cpe_os.dir/owner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cpe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cpe_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
