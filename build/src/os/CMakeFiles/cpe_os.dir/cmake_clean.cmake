file(REMOVE_RECURSE
  "CMakeFiles/cpe_os.dir/cpu.cpp.o"
  "CMakeFiles/cpe_os.dir/cpu.cpp.o.d"
  "CMakeFiles/cpe_os.dir/host.cpp.o"
  "CMakeFiles/cpe_os.dir/host.cpp.o.d"
  "CMakeFiles/cpe_os.dir/owner.cpp.o"
  "CMakeFiles/cpe_os.dir/owner.cpp.o.d"
  "libcpe_os.a"
  "libcpe_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpe_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
