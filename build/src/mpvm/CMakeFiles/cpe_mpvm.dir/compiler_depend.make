# Empty compiler generated dependencies file for cpe_mpvm.
# This may be replaced when dependencies are built.
