file(REMOVE_RECURSE
  "libcpe_mpvm.a"
)
