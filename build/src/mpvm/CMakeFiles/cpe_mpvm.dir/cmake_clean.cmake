file(REMOVE_RECURSE
  "CMakeFiles/cpe_mpvm.dir/checkpoint.cpp.o"
  "CMakeFiles/cpe_mpvm.dir/checkpoint.cpp.o.d"
  "CMakeFiles/cpe_mpvm.dir/mpvm.cpp.o"
  "CMakeFiles/cpe_mpvm.dir/mpvm.cpp.o.d"
  "libcpe_mpvm.a"
  "libcpe_mpvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpe_mpvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
