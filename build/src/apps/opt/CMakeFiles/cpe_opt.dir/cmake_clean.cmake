file(REMOVE_RECURSE
  "CMakeFiles/cpe_opt.dir/adm_opt.cpp.o"
  "CMakeFiles/cpe_opt.dir/adm_opt.cpp.o.d"
  "CMakeFiles/cpe_opt.dir/exemplars.cpp.o"
  "CMakeFiles/cpe_opt.dir/exemplars.cpp.o.d"
  "CMakeFiles/cpe_opt.dir/network.cpp.o"
  "CMakeFiles/cpe_opt.dir/network.cpp.o.d"
  "CMakeFiles/cpe_opt.dir/opt_app.cpp.o"
  "CMakeFiles/cpe_opt.dir/opt_app.cpp.o.d"
  "CMakeFiles/cpe_opt.dir/spmd_opt.cpp.o"
  "CMakeFiles/cpe_opt.dir/spmd_opt.cpp.o.d"
  "libcpe_opt.a"
  "libcpe_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpe_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
