
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/opt/adm_opt.cpp" "src/apps/opt/CMakeFiles/cpe_opt.dir/adm_opt.cpp.o" "gcc" "src/apps/opt/CMakeFiles/cpe_opt.dir/adm_opt.cpp.o.d"
  "/root/repo/src/apps/opt/exemplars.cpp" "src/apps/opt/CMakeFiles/cpe_opt.dir/exemplars.cpp.o" "gcc" "src/apps/opt/CMakeFiles/cpe_opt.dir/exemplars.cpp.o.d"
  "/root/repo/src/apps/opt/network.cpp" "src/apps/opt/CMakeFiles/cpe_opt.dir/network.cpp.o" "gcc" "src/apps/opt/CMakeFiles/cpe_opt.dir/network.cpp.o.d"
  "/root/repo/src/apps/opt/opt_app.cpp" "src/apps/opt/CMakeFiles/cpe_opt.dir/opt_app.cpp.o" "gcc" "src/apps/opt/CMakeFiles/cpe_opt.dir/opt_app.cpp.o.d"
  "/root/repo/src/apps/opt/spmd_opt.cpp" "src/apps/opt/CMakeFiles/cpe_opt.dir/spmd_opt.cpp.o" "gcc" "src/apps/opt/CMakeFiles/cpe_opt.dir/spmd_opt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pvm/CMakeFiles/cpe_pvm.dir/DependInfo.cmake"
  "/root/repo/build/src/upvm/CMakeFiles/cpe_upvm.dir/DependInfo.cmake"
  "/root/repo/build/src/adm/CMakeFiles/cpe_adm.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/cpe_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cpe_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cpe_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
