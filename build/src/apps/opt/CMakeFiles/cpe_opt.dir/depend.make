# Empty dependencies file for cpe_opt.
# This may be replaced when dependencies are built.
