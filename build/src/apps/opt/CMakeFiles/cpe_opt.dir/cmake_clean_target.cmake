file(REMOVE_RECURSE
  "libcpe_opt.a"
)
