file(REMOVE_RECURSE
  "libcpe_net.a"
)
