file(REMOVE_RECURSE
  "CMakeFiles/cpe_net.dir/network.cpp.o"
  "CMakeFiles/cpe_net.dir/network.cpp.o.d"
  "CMakeFiles/cpe_net.dir/tcp.cpp.o"
  "CMakeFiles/cpe_net.dir/tcp.cpp.o.d"
  "libcpe_net.a"
  "libcpe_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpe_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
