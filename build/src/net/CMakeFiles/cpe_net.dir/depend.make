# Empty dependencies file for cpe_net.
# This may be replaced when dependencies are built.
