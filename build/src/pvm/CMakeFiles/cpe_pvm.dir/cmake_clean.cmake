file(REMOVE_RECURSE
  "CMakeFiles/cpe_pvm.dir/buffer.cpp.o"
  "CMakeFiles/cpe_pvm.dir/buffer.cpp.o.d"
  "CMakeFiles/cpe_pvm.dir/system.cpp.o"
  "CMakeFiles/cpe_pvm.dir/system.cpp.o.d"
  "CMakeFiles/cpe_pvm.dir/task.cpp.o"
  "CMakeFiles/cpe_pvm.dir/task.cpp.o.d"
  "libcpe_pvm.a"
  "libcpe_pvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpe_pvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
