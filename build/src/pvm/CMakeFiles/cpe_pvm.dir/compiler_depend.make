# Empty compiler generated dependencies file for cpe_pvm.
# This may be replaced when dependencies are built.
