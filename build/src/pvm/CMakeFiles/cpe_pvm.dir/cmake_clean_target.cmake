file(REMOVE_RECURSE
  "libcpe_pvm.a"
)
