
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pvm/buffer.cpp" "src/pvm/CMakeFiles/cpe_pvm.dir/buffer.cpp.o" "gcc" "src/pvm/CMakeFiles/cpe_pvm.dir/buffer.cpp.o.d"
  "/root/repo/src/pvm/system.cpp" "src/pvm/CMakeFiles/cpe_pvm.dir/system.cpp.o" "gcc" "src/pvm/CMakeFiles/cpe_pvm.dir/system.cpp.o.d"
  "/root/repo/src/pvm/task.cpp" "src/pvm/CMakeFiles/cpe_pvm.dir/task.cpp.o" "gcc" "src/pvm/CMakeFiles/cpe_pvm.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cpe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cpe_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/cpe_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
