file(REMOVE_RECURSE
  "libcpe_upvm.a"
)
