file(REMOVE_RECURSE
  "CMakeFiles/cpe_upvm.dir/upvm.cpp.o"
  "CMakeFiles/cpe_upvm.dir/upvm.cpp.o.d"
  "libcpe_upvm.a"
  "libcpe_upvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpe_upvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
