# Empty dependencies file for cpe_upvm.
# This may be replaced when dependencies are built.
