file(REMOVE_RECURSE
  "CMakeFiles/cpe_adm.dir/partition.cpp.o"
  "CMakeFiles/cpe_adm.dir/partition.cpp.o.d"
  "libcpe_adm.a"
  "libcpe_adm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpe_adm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
