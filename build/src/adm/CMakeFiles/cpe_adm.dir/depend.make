# Empty dependencies file for cpe_adm.
# This may be replaced when dependencies are built.
