file(REMOVE_RECURSE
  "libcpe_adm.a"
)
